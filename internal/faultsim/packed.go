// Packed PPSFP engine: 64 ternary patterns per two-bitplane word,
// evaluated through the same compiled gate and per-fault behaviour LUTs
// as the scalar cone engine. Baselines are packed once per campaign;
// each fault then needs one packed behaviour-LUT evaluation plus one
// packed cone propagation per 64-pattern chunk, instead of one scalar
// cone pass per pattern. Defined to be bit-identical to the reference
// and compiled engines (same detection method, same first detecting
// pattern), which the differential suites enforce.
package faultsim

import (
	"context"
	"fmt"

	"cpsinw/internal/core"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// packedBase is the fault-free response of one 64-pattern chunk.
type packedBase struct {
	start int               // index of the chunk's first pattern
	valid uint64            // lanes backed by a real pattern
	in    []logic.PackedVec // per primary input (circuit input order)
	vals  []logic.PackedVec // per net id, canonical planes
}

// packTernaryChunk packs up to 64 ternary patterns into per-input
// planes; inputs missing from a pattern are X, matching the scalar
// map-based evaluation. Lanes beyond the chunk stay X.
func (s *Simulator) packTernaryChunk(patterns []Pattern) []logic.PackedVec {
	in := make([]logic.PackedVec, len(s.C.Inputs))
	for k, p := range patterns {
		for i, pi := range s.C.Inputs {
			v, ok := p[pi]
			if !ok {
				v = logic.LX
			}
			in[i] = in[i].WithLane(k, v)
		}
	}
	return in
}

// packedBaselines memoizes the good-circuit planes per 64-pattern
// chunk. All chunk planes share one backing array (one allocation to
// scan instead of one per chunk).
func (s *Simulator) packedBaselines(patterns []Pattern) []packedBase {
	cc := s.compiled()
	nChunks := (len(patterns) + 63) / 64
	backing := make([]logic.PackedVec, nChunks*cc.NumNets())
	out := make([]packedBase, 0, nChunks)
	for base := 0; base < len(patterns); base += 64 {
		chunk := patterns[base:min(base+64, len(patterns))]
		valid := ^uint64(0)
		if len(chunk) < 64 {
			valid = 1<<uint(len(chunk)) - 1
		}
		pb := packedBase{
			start: base,
			valid: valid,
			in:    s.packTernaryChunk(chunk),
		}
		pb.vals = cc.EvalPacked(pb.in, backing[:cc.NumNets():cc.NumNets()])
		backing = backing[cc.NumNets():]
		out = append(out, pb)
	}
	return out
}

// evalFaultLUTPacked evaluates one per-fault behaviour table across all
// lanes: the faulty gate's output planes plus the lanes carrying the
// IDDQ-leak signature (only fully-defined input vectors can leak, by
// construction of the table). The nested per-digit loops prune whole
// subtables whose lane mask is already empty and avoid the radix-3
// divisions of a flat index walk (this runs once per fault per chunk,
// right on the packed hot path).
func evalFaultLUTPacked(lut *faultLUT, in []logic.PackedVec) (logic.PackedVec, uint64) {
	// Digit masks computed in place (the [3][3]uint64 of
	// logic.TernaryLaneMasks is a 72-byte copy per call, once per fault
	// per chunk).
	var masks [3][3]uint64
	for i := range in {
		p := in[i].Canon()
		masks[i][0] = p.Known &^ p.Val
		masks[i][1] = p.Val
		masks[i][2] = ^p.Known
	}
	var out logic.PackedVec
	var leak uint64
	accum := func(idx int, m uint64) {
		if lut.leak[idx] {
			leak |= m
		}
		switch lut.out[idx] {
		case logic.L1:
			out.Val |= m
			out.Known |= m
		case logic.L0:
			out.Known |= m
		}
	}
	switch len(in) {
	case 1:
		for d0 := 0; d0 < 3; d0++ {
			if m := masks[0][d0]; m != 0 {
				accum(d0, m)
			}
		}
	case 2:
		for d1 := 0; d1 < 3; d1++ {
			m1 := masks[1][d1]
			if m1 == 0 {
				continue
			}
			for d0 := 0; d0 < 3; d0++ {
				if m := m1 & masks[0][d0]; m != 0 {
					accum(3*d1+d0, m)
				}
			}
		}
	default:
		for d2 := 0; d2 < 3; d2++ {
			m2 := masks[2][d2]
			if m2 == 0 {
				continue
			}
			for d1 := 0; d1 < 3; d1++ {
				m1 := m2 & masks[1][d1]
				if m1 == 0 {
					continue
				}
				for d0 := 0; d0 < 3; d0++ {
					if m := m1 & masks[0][d0]; m != 0 {
						accum(9*d2+3*d1+d0, m)
					}
				}
			}
		}
	}
	return out, leak
}

// faninPlanes gathers one gate's input planes.
func faninPlanes(cc *logic.CompiledCircuit, gi int, vals []logic.PackedVec, buf []logic.PackedVec) []logic.PackedVec {
	fin := cc.Fanin[gi]
	buf = buf[:len(fin)]
	for k, nid := range fin {
		buf[k] = vals[nid]
	}
	return buf
}

// packedScratch is the packed counterpart of coneScratch: epoch-stamped
// faulty planes over the chunk baseline. Scheduling needs no heap — the
// compiled circuit's static, topologically-sorted fanout cones are
// walked directly, because with 64 lanes in flight nearly every cone
// gate carries a change in some lane.
type packedScratch struct {
	cc    *logic.CompiledCircuit
	fval  []logic.PackedVec
	stamp []int64
	epoch int64
	inbuf [3]logic.PackedVec

	// Scratch-local resolution caches — lock-free because a scratch is
	// owned by exactly one goroutine at a time, and warm across
	// campaigns because scratches are pooled on the Simulator. The
	// 1-entry memos exploit fault-list locality (faults group by gate
	// and iterate the fault kinds of one transistor consecutively; the
	// name strings share backing, so equality is a pointer comparison);
	// luts replaces the process-wide sync.Map, whose interface-key
	// hashing costs more than the whole packed evaluation of one fault.
	lastGate  string
	lastGI    int
	lastTr    string
	lastKind  gates.Kind
	lastSlots *[8]*faultLUT
	luts      [16]map[string]*[8]*faultLUT // [kind][transistor][tfault]

	evals, runs uint64 // packed gate evals / fault runs, flushed per campaign
	life        uint64 // flushed evals, so life + evals is monotone for progress
}

// lifetimeEvals is the monotone packed-eval count of this scratch.
func (sc *packedScratch) lifetimeEvals() uint64 { return sc.life + sc.evals }

// packedScratchOf hands out a reusable scratch (the per-net plane and
// stamp slices dominate the allocation cost of small campaigns).
func (s *Simulator) packedScratchOf() *packedScratch {
	if v := s.scratchPool.Get(); v != nil {
		return v.(*packedScratch)
	}
	cc := s.compiled()
	return &packedScratch{
		cc:     cc,
		fval:   make([]logic.PackedVec, cc.NumNets()),
		stamp:  make([]int64, cc.NumNets()),
		lastGI: -1,
	}
}

func (s *Simulator) putPackedScratch(sc *packedScratch) {
	sc.flushStats()
	s.scratchPool.Put(sc)
}

// gateIndex memoizes the instance-name lookup behind the 1-entry cache.
func (sc *packedScratch) gateIndex(s *Simulator, name string) (int, bool) {
	if sc.lastGI >= 0 && name == sc.lastGate {
		return sc.lastGI, true
	}
	gi, ok := s.gateIdx[name]
	if ok {
		sc.lastGate, sc.lastGI = name, gi
	}
	return gi, ok
}

// propagateCone seeds gate gi's faulty output planes and walks gi's
// static cone in topological order, evaluating only gates with a
// changed fanin plane and recording only planes that actually change
// versus the chunk baseline (all 64 lanes at once). It returns the
// lanes with a definite good/faulty primary-output difference; per lane
// this computes exactly what the scalar cone engine computes per
// pattern.
func (sc *packedScratch) propagateCone(gi int, fout logic.PackedVec, base []logic.PackedVec) uint64 {
	cc := sc.cc
	onet := cc.GateOut[gi]
	sc.evals++
	if fout == base[onet] {
		return 0 // no lane excites the fault
	}
	sc.epoch++
	epoch := sc.epoch
	stamp := sc.stamp
	sc.fval[onet], stamp[onet] = fout, epoch
	// A lane can only detect if it excites the fault at the seed, so
	// the first excited lane lower-bounds every achievable detection
	// lane: the moment a primary output differs there, no further
	// propagation can improve the result and the walk stops.
	floor := uint64(1) << uint(logic.FirstLane(
		(fout.Val^base[onet].Val)|(fout.Known^base[onet].Known)))
	var diff uint64
	if cc.IsOutput[onet] {
		diff |= logic.DefiniteDiffMask(base[onet], fout)
	}
	if diff&floor != 0 {
		return diff
	}
	for _, g := range cc.Cone(gi) {
		fin := cc.Fanin[g]
		dirty := false
		for _, nid := range fin {
			if stamp[nid] == epoch {
				dirty = true
				break
			}
		}
		if !dirty {
			continue
		}
		sc.evals++
		in := sc.inbuf[:len(fin)]
		for k, nid := range fin {
			if stamp[nid] == epoch {
				in[k] = sc.fval[nid]
			} else {
				in[k] = base[nid]
			}
		}
		nv := logic.EvalKindPacked(cc.Kinds[g], cc.LUT[g], in)
		on := cc.GateOut[g]
		if nv == base[on] {
			continue
		}
		sc.fval[on], stamp[on] = nv, epoch
		if cc.IsOutput[on] {
			diff |= logic.DefiniteDiffMask(base[on], nv)
			if diff&floor != 0 {
				return diff
			}
		}
	}
	return diff
}

// flushStats publishes the accumulated packed counters (once per
// campaign or worker, not per fault: two uncontended atomics per fault
// are measurable at packed speeds).
func (sc *packedScratch) flushStats() {
	if sc.evals > 0 {
		engineStats.packedGateEvals.Add(sc.evals)
		sc.life += sc.evals
		sc.evals = 0
	}
	if sc.runs > 0 {
		engineStats.packedFaultRuns.Add(sc.runs)
		sc.runs = 0
	}
}

// resolveFaultLUT memoizes compiledFaultLUT resolutions in the scratch.
func (sc *packedScratch) resolveFaultLUT(key faultLUTKey) (*faultLUT, error) {
	if int(key.kind) >= len(sc.luts) || int(key.tf) >= 8 {
		return compiledFaultLUT(key.kind, key.tr, key.tf) // out-of-range enums: no memo
	}
	byTr := sc.luts[key.kind]
	if byTr == nil {
		byTr = map[string]*[8]*faultLUT{}
		sc.luts[key.kind] = byTr
	}
	slots := byTr[key.tr]
	if slots == nil {
		slots = new([8]*faultLUT)
		byTr[key.tr] = slots
	}
	sc.lastKind, sc.lastTr, sc.lastSlots = key.kind, key.tr, slots
	if lut := slots[key.tf]; lut != nil {
		return lut, nil
	}
	lut, err := compiledFaultLUT(key.kind, key.tr, key.tf)
	if err != nil {
		return nil, err
	}
	slots[key.tf] = lut
	return lut, nil
}

// simulateTransistorFaultPacked is the packed counterpart of
// simulateTransistorFaultCompiled: identical Detection results, one
// packed behaviour-LUT evaluation plus one packed cone pass per chunk.
func (s *Simulator) simulateTransistorFaultPacked(f core.Fault, bases []packedBase, sc *packedScratch, useIDDQ bool) (Detection, error) {
	d := Detection{Fault: f, Pattern: -1}
	if f.Kind.IsLineFault() {
		return d, nil
	}
	tf, ok := f.Kind.TFault()
	if !ok {
		return d, nil // analog-only faults are out of scope here
	}
	if len(bases) == 0 {
		return d, nil
	}
	gi, ok := sc.gateIndex(s, f.Gate)
	if !ok {
		return d, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
	}
	kind := s.C.Gates[gi].Kind
	var lut *faultLUT
	if sc.lastSlots != nil && kind == sc.lastKind && f.Transistor == sc.lastTr && int(tf) < 8 {
		lut = sc.lastSlots[tf]
	}
	if lut == nil {
		var err error
		lut, err = sc.resolveFaultLUT(faultLUTKey{kind, f.Transistor, tf})
		if err != nil {
			return d, err
		}
	}
	sc.runs++
	cc := sc.cc
	for ci := range bases {
		pb := &bases[ci]
		fout, leak := evalFaultLUTPacked(lut, faninPlanes(cc, gi, pb.vals, sc.inbuf[:]))
		if !useIDDQ {
			leak = 0
		}
		// Per pattern, the leak check precedes the output compare
		// (mirroring the scalar engines); across patterns the earliest
		// lane wins. A leak in the chunk's first lane therefore decides
		// immediately — no output difference can come earlier.
		if leak&1 == 1 {
			d.Method, d.Pattern = ByIDDQ, pb.start
			return d, nil
		}
		diff := sc.propagateCone(gi, fout, pb.vals)
		m := (leak | diff) & pb.valid
		if m == 0 {
			continue
		}
		lane := logic.FirstLane(m)
		if leak>>uint(lane)&1 == 1 {
			d.Method = ByIDDQ
		} else {
			d.Method = ByOutput
		}
		d.Pattern = pb.start + lane
		return d, nil
	}
	return d, nil
}

// runTransistorPacked is the serial packed campaign driver.
func (s *Simulator) runTransistorPacked(ctx context.Context, faults []core.Fault, patterns []Pattern, useIDDQ bool) ([]Detection, error) {
	sink := s.progressSink("transistor", len(faults))
	bases := s.packedBaselines(patterns)
	sc := s.packedScratchOf()
	defer s.putPackedScratch(sc)
	sink.add(0, 0, 0, uint64(len(bases))*uint64(len(s.C.Gates))) // baseline packed evals
	out := make([]Detection, len(faults))
	for i, f := range faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		before := sc.lifetimeEvals()
		d, err := s.simulateTransistorFaultPacked(f, bases, sc, useIDDQ)
		if err != nil {
			return nil, err
		}
		out[i] = d
		sink.add(1, b2i(d.Detected()), b2i(!transistorSimulable(f)), sc.lifetimeEvals()-before)
	}
	return out, nil
}

// laneGateIndex decodes one gate's ternary LUT index for a single lane
// of the given planes.
func laneGateIndex(cc *logic.CompiledCircuit, gi, lane int, vals []logic.PackedVec) int {
	idx := 0
	for k, nid := range cc.Fanin[gi] {
		idx += int(vals[nid].Get(lane)) * logic.Pow3(k)
	}
	return idx
}

// runTwoPatternPacked replays pattern pairs through the stuck-open
// transition LUTs with packed cone propagation: the faulty gate's
// charge-state trajectory is still decoded per lane (the Mealy state is
// radix-3 over internal node labels and does not vectorise), but the
// expensive downstream propagation of the test pattern covers all 64
// pairs of a chunk in one pass.
func (s *Simulator) runTwoPatternPacked(faults []core.Fault, pairs [][2]Pattern) ([]Detection, error) {
	out := make([]Detection, len(faults))
	hasOpen := false
	for i, f := range faults {
		out[i] = Detection{Fault: f, Pattern: -1}
		if tf, ok := f.Kind.TFault(); ok && tf == logic.TFaultOpen {
			hasOpen = true
		}
	}
	if !hasOpen {
		return out, nil // nothing to simulate: skip the baseline evals
	}
	firsts := make([]Pattern, len(pairs))
	seconds := make([]Pattern, len(pairs))
	for k, pair := range pairs {
		firsts[k], seconds[k] = pair[0], pair[1]
	}
	bases0 := s.packedBaselines(firsts)
	bases1 := s.packedBaselines(seconds)
	cc := s.compiled()
	sc := s.packedScratchOf()
	defer s.putPackedScratch(sc)
	totalRuns := uint64(0)
	defer func() { engineStats.twoPatternRuns.Add(totalRuns) }()
	for i, f := range faults {
		tf, ok := f.Kind.TFault()
		if !ok || tf != logic.TFaultOpen {
			continue
		}
		gi, ok := s.gateIdx[f.Gate]
		if !ok {
			return nil, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
		}
		lut := compiledOpenLUT(s.C.Gates[gi].Kind, f.Transistor)
	chunks:
		for ci := range bases0 {
			pb0, pb1 := &bases0[ci], &bases1[ci]
			n := 64
			if pb0.valid != ^uint64(0) {
				n = logic.FirstLane(^pb0.valid)
			}
			var fout logic.PackedVec
			for lane := 0; lane < n; lane++ {
				totalRuns++
				st := lut.next[int(lut.init)*lut.nVec+laneGateIndex(cc, gi, lane, pb0.vals)]
				fout = fout.WithLane(lane, lut.out[int(st)*lut.nVec+laneGateIndex(cc, gi, lane, pb1.vals)])
			}
			diff := sc.propagateCone(gi, fout, pb1.vals) & pb1.valid
			if diff != 0 {
				out[i].Method = ByTwoPattern
				out[i].Pattern = pb1.start + logic.FirstLane(diff)
				break chunks
			}
		}
	}
	return out, nil
}
