// Packed PPSFP engine: N×64 ternary patterns per lane block (two
// bitplane words per 64 lanes), evaluated through the same compiled
// gate and per-fault behaviour LUTs as the scalar cone engine.
// Baselines are packed once per campaign; each fault then needs one
// packed behaviour-LUT evaluation plus one event-driven packed
// propagation per block, instead of one scalar cone pass per pattern.
// When the campaign has fewer patterns than lanes, independent faults
// are packed into the spare lanes and share a single propagation pass.
// Defined to be bit-identical to the reference and compiled engines
// (same detection method, same first detecting pattern), which the
// differential suites enforce.
package faultsim

import (
	"context"
	"fmt"

	"cpsinw/internal/core"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// maxPackGroups bounds how many faults share one propagation pass.
// Beyond a handful of groups the union of the faults' cones approaches
// the whole circuit and the shared walk stops saving work.
const maxPackGroups = 8

// packedBase is the fault-free response of one lane-block chunk:
// vals is net-major with stride w (w words of 64 lanes per net).
type packedBase struct {
	start int               // index of the chunk's first pattern
	w     int               // lane words per net
	valid []uint64          // lanes backed by a real pattern, one word per lane word
	in    []logic.PackedVec // per primary input, input-major stride w
	vals  []logic.PackedVec // per net id, net-major stride w, canonical planes
}

// packTernaryBlock packs patterns into width-w input blocks, replicating
// the whole pattern list `copies` times across consecutive lane groups
// (copies > 1 builds the shared baseline of a fault-packed batch).
// Inputs missing from a pattern are X, matching the scalar map-based
// evaluation; lanes beyond the replicated patterns stay X.
func (s *Simulator) packTernaryBlock(patterns []Pattern, w, copies int) []logic.PackedVec {
	in := make([]logic.PackedVec, len(s.C.Inputs)*w)
	for g := 0; g < copies; g++ {
		off := g * len(patterns)
		for k, p := range patterns {
			lane := off + k
			for i, pi := range s.C.Inputs {
				v, ok := p[pi]
				if !ok {
					v = logic.LX
				}
				in[i*w+lane>>6] = in[i*w+lane>>6].WithLane(lane&63, v)
			}
		}
	}
	return in
}

// laneMask builds a w-word mask of n consecutive lanes starting at from.
func laneMask(from, n, w int) []uint64 {
	m := make([]uint64, w)
	for l := from; l < from+n; l++ {
		m[l>>6] |= 1 << uint(l&63)
	}
	return m
}

// packedBaselines memoizes the good-circuit planes per 64w-pattern
// chunk. All chunk planes share one backing array (one allocation to
// scan instead of one per chunk).
func (s *Simulator) packedBaselines(patterns []Pattern, w int) []packedBase {
	cc := s.compiled()
	lanes := 64 * w
	nChunks := (len(patterns) + lanes - 1) / lanes
	stride := cc.NumNets() * w
	backing := make([]logic.PackedVec, nChunks*stride)
	out := make([]packedBase, 0, nChunks)
	for base := 0; base < len(patterns); base += lanes {
		chunk := patterns[base:min(base+lanes, len(patterns))]
		pb := packedBase{
			start: base,
			w:     w,
			valid: laneMask(0, len(chunk), w),
			in:    s.packTernaryBlock(chunk, w, 1),
		}
		pb.vals = cc.EvalBlock(pb.in, w, backing[:stride:stride])
		backing = backing[stride:]
		out = append(out, pb)
	}
	return out
}

// packedGroupBase is the shared baseline of a fault-packed batch: the
// whole pattern list replicated across `groups` disjoint lane groups of
// span lanes each, so every group sees identical fault-free planes and
// a batch of faults propagates in one pass.
type packedGroupBase struct {
	w      int
	span   int // lanes per group (= the campaign's pattern count)
	groups int
	masks  [][]uint64 // per group, its lanes
	in     []logic.PackedVec
	vals   []logic.PackedVec
}

// packedGroupedBase evaluates the replicated baseline once.
func (s *Simulator) packedGroupedBase(patterns []Pattern, w, groups int) *packedGroupBase {
	cc := s.compiled()
	gb := &packedGroupBase{
		w:      w,
		span:   len(patterns),
		groups: groups,
		masks:  make([][]uint64, groups),
		in:     s.packTernaryBlock(patterns, w, groups),
	}
	for g := 0; g < groups; g++ {
		gb.masks[g] = laneMask(g*len(patterns), len(patterns), w)
	}
	gb.vals = cc.EvalBlock(gb.in, w, make([]logic.PackedVec, cc.NumNets()*w))
	return gb
}

// packGroups sizes a fault-packed batch: how many whole pattern-list
// copies fit in 64w lanes, clamped by the simulable fault count and
// maxPackGroups. 1 means no packing.
func packGroups(nPatterns, nSimulable, w int) int {
	if nSimulable < 2 || nPatterns == 0 || nPatterns > 32*w {
		return 1
	}
	g := 64 * w / nPatterns
	if g > maxPackGroups {
		g = maxPackGroups
	}
	if g > nSimulable {
		g = nSimulable
	}
	if g < 2 {
		return 1
	}
	return g
}

// laneWordsFor picks the lane-block width of a campaign: an explicit
// Simulator.LaneWords wins; otherwise scale with the pattern count, and
// with the fault count when spare width buys fault packing.
func (s *Simulator) laneWordsFor(nPatterns, nFaults int) int {
	if logic.ValidLaneWords(s.LaneWords) {
		return s.LaneWords
	}
	switch {
	case nPatterns > 128:
		return 4
	case nPatterns > 64:
		return 2
	case nFaults >= 2 && nPatterns > 32:
		return 4
	case nFaults >= 2 && nPatterns > 16:
		return 2
	}
	return 1
}

// packedPlan is the per-campaign packing decision plus its baselines.
type packedPlan struct {
	w      int
	groups int
	bases  []packedBase     // groups == 1: plain chunked sweep
	gb     *packedGroupBase // groups > 1: fault-packed batches
}

// packedPlanFor sizes the lane blocks and fault-packing of a campaign
// and evaluates the matching baselines.
func (s *Simulator) packedPlanFor(faults []core.Fault, patterns []Pattern) packedPlan {
	sim := 0
	for _, f := range faults {
		if transistorSimulable(f) {
			sim++
		}
	}
	w := s.laneWordsFor(len(patterns), sim)
	pl := packedPlan{w: w, groups: packGroups(len(patterns), sim, w)}
	if pl.groups > 1 {
		pl.gb = s.packedGroupedBase(patterns, w, pl.groups)
	} else {
		pl.bases = s.packedBaselines(patterns, w)
	}
	return pl
}

// baseEvals counts the baseline word evaluations of the plan, reported
// to the progress sink before the fault sweep starts.
func (pl *packedPlan) baseEvals(nGates int) uint64 {
	if pl.gb != nil {
		return uint64(nGates) * uint64(pl.w)
	}
	return uint64(len(pl.bases)) * uint64(nGates) * uint64(pl.w)
}

// evalFaultLUTPacked evaluates one per-fault behaviour table across all
// lanes: the faulty gate's output planes plus the lanes carrying the
// IDDQ-leak signature (only fully-defined input vectors can leak, by
// construction of the table). The nested per-digit loops prune whole
// subtables whose lane mask is already empty and avoid the radix-3
// divisions of a flat index walk (this runs once per fault per word,
// right on the packed hot path).
func evalFaultLUTPacked(lut *faultLUT, in []logic.PackedVec) (logic.PackedVec, uint64) {
	// Digit masks computed in place (the [3][3]uint64 of
	// logic.TernaryLaneMasks is a 72-byte copy per call, once per fault
	// per word).
	var masks [3][3]uint64
	for i := range in {
		p := in[i].Canon()
		masks[i][0] = p.Known &^ p.Val
		masks[i][1] = p.Val
		masks[i][2] = ^p.Known
	}
	var out logic.PackedVec
	var leak uint64
	accum := func(idx int, m uint64) {
		if lut.leak[idx] {
			leak |= m
		}
		switch lut.out[idx] {
		case logic.L1:
			out.Val |= m
			out.Known |= m
		case logic.L0:
			out.Known |= m
		}
	}
	switch len(in) {
	case 1:
		for d0 := 0; d0 < 3; d0++ {
			if m := masks[0][d0]; m != 0 {
				accum(d0, m)
			}
		}
	case 2:
		for d1 := 0; d1 < 3; d1++ {
			m1 := masks[1][d1]
			if m1 == 0 {
				continue
			}
			for d0 := 0; d0 < 3; d0++ {
				if m := m1 & masks[0][d0]; m != 0 {
					accum(3*d1+d0, m)
				}
			}
		}
	default:
		for d2 := 0; d2 < 3; d2++ {
			m2 := masks[2][d2]
			if m2 == 0 {
				continue
			}
			for d1 := 0; d1 < 3; d1++ {
				m1 := m2 & masks[1][d1]
				if m1 == 0 {
					continue
				}
				for d0 := 0; d0 < 3; d0++ {
					if m := m1 & masks[0][d0]; m != 0 {
						accum(9*d2+3*d1+d0, m)
					}
				}
			}
		}
	}
	return out, leak
}

// packedSeed is one fault's state inside a propagation pass. Its lane
// group is mask; fout is the blended site plane (baseline outside the
// mask, faulty within), leak the masked IDDQ lanes, diff the masked
// primary-output deviation lanes accumulated so far. floor is the first
// excited lane: no detection can land earlier, so the seed resolves the
// moment diff gains that lane. pattern = patOff + lane maps a lane back
// to the campaign's pattern index.
type packedSeed struct {
	out    int // index into the campaign's detection slice
	gi     int // faulted gate
	onet   int // its output net
	floor  int
	patOff int
	live   bool
	mask   [logic.MaxLaneWords]uint64
	leak   [logic.MaxLaneWords]uint64
	diff   [logic.MaxLaneWords]uint64
	fout   [logic.MaxLaneWords]logic.PackedVec
}

// resolve finalizes a seed after propagation: the earliest lane of the
// combined leak/diff mask wins, leak beating output at equal lanes (the
// per-pattern observation order of the scalar engines).
func (sd *packedSeed) resolve(w int) (DetectMethod, int, bool) {
	var m [logic.MaxLaneWords]uint64
	for j := 0; j < w; j++ {
		m[j] = sd.leak[j] | sd.diff[j]
	}
	lane := logic.FirstLaneBlock(m[:w])
	if lane == w<<6 {
		return ByNone, -1, false
	}
	if sd.leak[lane>>6]>>uint(lane&63)&1 == 1 {
		return ByIDDQ, sd.patOff + lane, true
	}
	return ByOutput, sd.patOff + lane, true
}

// packedScratch is the packed counterpart of coneScratch: epoch-stamped
// faulty lane blocks over the chunk baseline, per-net dirty word masks
// and a topological-position min-heap of pending gates. The event-driven
// walk evaluates only gates with a dirty fanin word, and only the dirty
// words of those gates, so sparse campaigns never touch the static
// all-gates cone tables.
type packedScratch struct {
	cc    *logic.CompiledCircuit
	w     int               // current lane-block width of fval
	fval  []logic.PackedVec // net-major stride w, valid where stamp/dirty say so
	stamp []int64           // net touched-epoch
	dirty []uint8           // net -> word mask of deviations vs baseline
	gq    []int64           // gate queued-marker epoch
	epoch int64
	heap  []int // pending gate indices, min-heap by topological position
	inbuf [3]logic.PackedVec
	seeds []packedSeed // reusable batch buffer

	// capture, while set, disables seed early-retirement so the walk
	// accumulates every seed's full deviation mask (signature capture
	// needs all detecting lanes, not just the earliest one).
	capture bool

	// Scratch-local resolution caches — lock-free because a scratch is
	// owned by exactly one goroutine at a time, and warm across
	// campaigns because scratches are pooled on the Simulator. The
	// 1-entry memos exploit fault-list locality (faults group by gate
	// and iterate the fault kinds of one transistor consecutively; the
	// name strings share backing, so equality is a pointer comparison);
	// luts replaces the process-wide sync.Map, whose interface-key
	// hashing costs more than the whole packed evaluation of one fault.
	lastGate  string
	lastGI    int
	lastTr    string
	lastKind  gates.Kind
	lastSlots *[8]*faultLUT
	luts      [16]map[string]*[8]*faultLUT // [kind][transistor][tfault]

	evals, runs uint64 // packed word evals / fault runs, flushed per campaign
	life        uint64 // flushed evals, so life + evals is monotone for progress
}

// lifetimeEvals is the monotone packed-eval count of this scratch.
func (sc *packedScratch) lifetimeEvals() uint64 { return sc.life + sc.evals }

// packedScratchOf hands out a reusable scratch (the per-net plane and
// stamp slices dominate the allocation cost of small campaigns).
func (s *Simulator) packedScratchOf() *packedScratch {
	if v := s.scratchPool.Get(); v != nil {
		return v.(*packedScratch)
	}
	cc := s.compiled()
	return &packedScratch{
		cc:     cc,
		w:      1,
		fval:   make([]logic.PackedVec, cc.NumNets()),
		stamp:  make([]int64, cc.NumNets()),
		dirty:  make([]uint8, cc.NumNets()),
		gq:     make([]int64, len(cc.C.Gates)),
		lastGI: -1,
	}
}

func (s *Simulator) putPackedScratch(sc *packedScratch) {
	sc.flushStats()
	s.scratchPool.Put(sc)
}

// ensure resizes the faulty-plane buffer to lane width w. Stale stamps
// from another width are harmless: propagateSeeds bumps the epoch.
func (sc *packedScratch) ensure(w int) {
	if sc.w == w {
		return
	}
	sc.w = w
	if n := sc.cc.NumNets() * w; cap(sc.fval) < n {
		sc.fval = make([]logic.PackedVec, n)
	} else {
		sc.fval = sc.fval[:n]
	}
}

// seedBuf hands out n reusable seed slots.
func (sc *packedScratch) seedBuf(n int) []packedSeed {
	if cap(sc.seeds) < n {
		sc.seeds = make([]packedSeed, n)
	}
	return sc.seeds[:n]
}

// gateIndex memoizes the instance-name lookup behind the 1-entry cache.
func (sc *packedScratch) gateIndex(s *Simulator, name string) (int, bool) {
	if sc.lastGI >= 0 && name == sc.lastGate {
		return sc.lastGI, true
	}
	gi, ok := s.gateIdx[name]
	if ok {
		sc.lastGate, sc.lastGI = name, gi
	}
	return gi, ok
}

func (sc *packedScratch) push(gi int) {
	if sc.gq[gi] == sc.epoch {
		return
	}
	sc.gq[gi] = sc.epoch
	sc.heap = append(sc.heap, gi)
	pos := sc.cc.Pos
	i := len(sc.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if pos[sc.heap[parent]] <= pos[sc.heap[i]] {
			break
		}
		sc.heap[parent], sc.heap[i] = sc.heap[i], sc.heap[parent]
		i = parent
	}
}

func (sc *packedScratch) pop() int {
	top := sc.heap[0]
	last := len(sc.heap) - 1
	sc.heap[0] = sc.heap[last]
	sc.heap = sc.heap[:last]
	pos := sc.cc.Pos
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(sc.heap) && pos[sc.heap[l]] < pos[sc.heap[smallest]] {
			smallest = l
		}
		if r < len(sc.heap) && pos[sc.heap[r]] < pos[sc.heap[smallest]] {
			smallest = r
		}
		if smallest == i {
			break
		}
		sc.heap[i], sc.heap[smallest] = sc.heap[smallest], sc.heap[i]
		i = smallest
	}
	return top
}

// flushStats publishes the accumulated packed counters (once per
// campaign or worker, not per fault: two uncontended atomics per fault
// are measurable at packed speeds).
func (sc *packedScratch) flushStats() {
	if sc.evals > 0 {
		engineStats.packedGateEvals.Add(sc.evals)
		sc.life += sc.evals
		sc.evals = 0
	}
	if sc.runs > 0 {
		engineStats.packedFaultRuns.Add(sc.runs)
		sc.runs = 0
	}
}

// resolveFaultLUT memoizes compiledFaultLUT resolutions in the scratch.
func (sc *packedScratch) resolveFaultLUT(key faultLUTKey) (*faultLUT, error) {
	if int(key.kind) >= len(sc.luts) || int(key.tf) >= 8 {
		return compiledFaultLUT(key.kind, key.tr, key.tf) // out-of-range enums: no memo
	}
	byTr := sc.luts[key.kind]
	if byTr == nil {
		byTr = map[string]*[8]*faultLUT{}
		sc.luts[key.kind] = byTr
	}
	slots := byTr[key.tr]
	if slots == nil {
		slots = new([8]*faultLUT)
		byTr[key.tr] = slots
	}
	sc.lastKind, sc.lastTr, sc.lastSlots = key.kind, key.tr, slots
	if lut := slots[key.tf]; lut != nil {
		return lut, nil
	}
	lut, err := compiledFaultLUT(key.kind, key.tr, key.tf)
	if err != nil {
		return nil, err
	}
	slots[key.tf] = lut
	return lut, nil
}

// resolvePackedFault resolves a simulable fault's gate and behaviour
// LUT through the scratch memos.
func (s *Simulator) resolvePackedFault(f core.Fault, sc *packedScratch) (int, *faultLUT, error) {
	tf, _ := f.Kind.TFault()
	gi, ok := sc.gateIndex(s, f.Gate)
	if !ok {
		return 0, nil, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
	}
	kind := s.C.Gates[gi].Kind
	if sc.lastSlots != nil && kind == sc.lastKind && f.Transistor == sc.lastTr && int(tf) < 8 {
		if lut := sc.lastSlots[tf]; lut != nil {
			return gi, lut, nil
		}
	}
	lut, err := sc.resolveFaultLUT(faultLUTKey{kind, f.Transistor, tf})
	return gi, lut, err
}

// seedChunk fills sd with fault f's behaviour over the baseline block,
// restricted to the lanes of mask: the masked IDDQ leak lanes, the
// blended site plane and the excitation floor. live is set when at
// least one masked lane excites the fault (the seed needs propagation
// to resolve); leak lanes are reported either way.
func (sc *packedScratch) seedChunk(sd *packedSeed, gi int, lut *faultLUT, mask []uint64, patOff int, base []logic.PackedVec, useIDDQ bool) {
	cc, w := sc.cc, sc.w
	on := cc.GateOut[gi]
	fin := cc.Fanin[gi]
	sd.gi, sd.onet, sd.patOff = gi, on, patOff
	var exc [logic.MaxLaneWords]uint64
	for j := 0; j < w; j++ {
		m := mask[j]
		sd.mask[j] = m
		sd.leak[j], sd.diff[j] = 0, 0
		b := base[on*w+j]
		if m == 0 {
			sd.fout[j] = b
			continue
		}
		in := sc.inbuf[:len(fin)]
		for k, nid := range fin {
			in[k] = base[nid*w+j]
		}
		fo, leak := evalFaultLUTPacked(lut, in)
		sc.evals++
		if useIDDQ {
			sd.leak[j] = leak & m
		}
		exc[j] = ((fo.Val ^ b.Val) | (fo.Known ^ b.Known)) & m
		sd.fout[j] = logic.PackedVec{
			Val:   b.Val&^m | fo.Val&m,
			Known: b.Known&^m | fo.Known&m,
		}
	}
	sd.floor = logic.FirstLaneBlock(exc[:w])
	sd.live = sd.floor < w<<6
}

// propagateSeeds pushes the live seeds' blended site planes through the
// event-driven block walk, accumulating each seed's masked
// primary-output deviations into its diff words. Seeds carry disjoint
// lane groups, evaluation is lane-wise, and every seed's fanins sit
// upstream of its own fault, so within one group the only deviation
// source is that group's seed: each seed's diff is exactly what a solo
// propagation over its lanes would produce, and the walk stops as soon
// as every seed has resolved its floor lane. Faulted gates re-assert
// their blended plane whenever another seed's effects wash over them,
// so batches need no structural disjointness — faults may even share a
// gate.
func (sc *packedScratch) propagateSeeds(seeds []packedSeed, base []logic.PackedVec) {
	cc, w := sc.cc, sc.w
	stamp, dirty := sc.stamp, sc.dirty
	sc.epoch++
	epoch := sc.epoch
	sc.heap = sc.heap[:0]

	live := 0
	// done accumulates, per word, the lanes whose detection is already
	// recorded under capture. A lane's signature bit is boolean — once a
	// definite PO diff credited it, further deviation spread on that
	// lane carries no information — so the walk forces completed lanes
	// back to baseline below. Lane-wise evaluation keeps this exact:
	// suppressing one lane cannot perturb any other.
	var done [logic.MaxLaneWords]uint64
	// credit distributes a changed output net's definite diff lanes to
	// the live seeds, retiring seeds that gain their floor lane (or,
	// under capture, whose whole excitation mask has detected).
	credit := func(on int) {
		var dm [logic.MaxLaneWords]uint64
		any := uint64(0)
		for j := 0; j < w; j++ {
			if dirty[on]>>uint(j)&1 == 1 {
				dm[j] = logic.DefiniteDiffMask(base[on*w+j], sc.fval[on*w+j])
				any |= dm[j]
			}
		}
		if any == 0 {
			return
		}
		for si := range seeds {
			sd := &seeds[si]
			if !sd.live {
				continue
			}
			gained := false
			for j := 0; j < w; j++ {
				if nd := dm[j] & sd.mask[j] &^ sd.diff[j]; nd != 0 {
					sd.diff[j] |= nd
					if sc.capture {
						done[j] |= nd
					}
					gained = true
				}
			}
			if !gained {
				continue
			}
			if sc.capture {
				complete := true
				for j := 0; j < w; j++ {
					if sd.diff[j] != sd.mask[j] {
						complete = false
						break
					}
				}
				if complete {
					sd.live = false
					live--
				}
				continue
			}
			if sd.diff[sd.floor>>6]>>uint(sd.floor&63)&1 == 1 {
				sd.live = false
				live--
			}
		}
	}

	// Seed phase: merge the blended site planes (groups are disjoint, so
	// merges never conflict), then stamp, credit and schedule each
	// distinct site net once.
	var sitebuf [maxPackGroups]int
	sites := sitebuf[:0]
	for si := range seeds {
		sd := &seeds[si]
		if !sd.live {
			continue
		}
		live++
		on := sd.onet
		if stamp[on] != epoch {
			stamp[on], dirty[on] = epoch, 0
			for j := 0; j < w; j++ {
				sc.fval[on*w+j] = base[on*w+j]
			}
			sites = append(sites, on)
		}
		for j := 0; j < w; j++ {
			m := sd.mask[j]
			if m == 0 {
				continue
			}
			fv := &sc.fval[on*w+j]
			fv.Val = fv.Val&^m | sd.fout[j].Val&m
			fv.Known = fv.Known&^m | sd.fout[j].Known&m
		}
	}
	for _, on := range sites {
		d := uint8(0)
		for j := 0; j < w; j++ {
			if sc.fval[on*w+j] != base[on*w+j] {
				d |= 1 << uint(j)
			}
		}
		dirty[on] = d
		if d == 0 {
			continue
		}
		if cc.IsOutput[on] {
			credit(on)
		}
		for _, g := range cc.Fanouts[on] {
			sc.push(g)
		}
	}

	// Event-driven walk: the min-heap pops gates in topological order,
	// so each gate's fanins are final when it is evaluated and no gate
	// runs twice per epoch. Only dirty fanin words are re-evaluated;
	// words that return to baseline drop their dirty bit.
	for len(sc.heap) > 0 && live > 0 {
		g := sc.pop()
		fin := cc.Fanin[g]
		dw := uint8(0)
		for _, nid := range fin {
			if stamp[nid] == epoch {
				dw |= dirty[nid]
			}
		}
		if dw == 0 {
			continue
		}
		on := cc.GateOut[g]
		prev := uint8(0)
		if stamp[on] == epoch { // a seeded site: keep non-evaluated words' deviations
			prev = dirty[on] &^ dw
		} else {
			stamp[on] = epoch
		}
		blend := false
		for si := range seeds {
			if seeds[si].gi == g {
				blend = true
				break
			}
		}
		nd := prev
		kind, lut := cc.Kinds[g], cc.LUT[g]
		for j := 0; j < w; j++ {
			if dw>>uint(j)&1 == 0 {
				continue
			}
			in := sc.inbuf[:len(fin)]
			for k, nid := range fin {
				if stamp[nid] == epoch && dirty[nid]>>uint(j)&1 == 1 {
					in[k] = sc.fval[nid*w+j]
				} else {
					in[k] = base[nid*w+j]
				}
			}
			nv := logic.EvalKindPacked(kind, lut, in)
			sc.evals++
			if blend {
				// A faulted gate's output is forced within its seed's
				// lanes regardless of what washed over its inputs.
				for si := range seeds {
					sd := &seeds[si]
					if sd.gi != g {
						continue
					}
					m := sd.mask[j]
					nv.Val = nv.Val&^m | sd.fout[j].Val&m
					nv.Known = nv.Known&^m | sd.fout[j].Known&m
				}
			}
			if dn := done[j]; dn != 0 {
				// Capture mode: lanes whose detection is recorded stop
				// deviating, so the walk converges at the per-lane rate
				// of an uncaptured sweep instead of running every
				// deviation to quiescence.
				b := base[on*w+j]
				nv.Val = nv.Val&^dn | b.Val&dn
				nv.Known = nv.Known&^dn | b.Known&dn
			}
			if nv != base[on*w+j] {
				sc.fval[on*w+j] = nv
				nd |= 1 << uint(j)
			}
		}
		dirty[on] = nd
		if nd == 0 {
			continue
		}
		if cc.IsOutput[on] {
			credit(on)
			if live == 0 {
				return
			}
		}
		for _, fg := range cc.Fanouts[on] {
			sc.push(fg)
		}
	}
}

// simulateTransistorFaultPacked is the packed counterpart of
// simulateTransistorFaultCompiled: identical Detection results, one
// packed behaviour-LUT evaluation plus one event-driven block pass per
// chunk. A non-nil sig disables the chunk early exits and the seed
// early-retirement, records fault si's full signature from the
// propagated lane masks and derives the Detection through the same
// earliest-lane/leak-precedence resolution the uncaptured sweep uses.
func (s *Simulator) simulateTransistorFaultPacked(f core.Fault, si int, bases []packedBase, sc *packedScratch, useIDDQ bool, sig *SignatureCapture) (Detection, error) {
	d := Detection{Fault: f, Pattern: -1}
	if !transistorSimulable(f) {
		return d, nil
	}
	if len(bases) == 0 {
		return d, nil
	}
	gi, lut, err := s.resolvePackedFault(f, sc)
	if err != nil {
		return d, err
	}
	sc.runs++
	w := sc.w
	seeds := sc.seedBuf(1)
	sd := &seeds[0]
	for ci := range bases {
		pb := &bases[ci]
		sc.seedChunk(sd, gi, lut, pb.valid, pb.start, pb.vals, useIDDQ)
		if sig != nil {
			if sd.live {
				sc.capture = true
				sc.propagateSeeds(seeds, pb.vals)
				sc.capture = false
			}
			sig.orLanes(si, pb.start, sd.diff[:w], false)
			sig.orLanes(si, pb.start, sd.leak[:w], true)
			if !d.Detected() {
				if method, pattern, ok := sd.resolve(w); ok {
					d.Method, d.Pattern = method, pattern
				}
			}
			continue
		}
		// Per pattern, the leak check precedes the output compare
		// (mirroring the scalar engines); across patterns the earliest
		// lane wins. A leak at or before the first excited lane therefore
		// decides without propagation — no output difference can come
		// earlier.
		if firstLeak := logic.FirstLaneBlock(sd.leak[:w]); firstLeak <= sd.floor {
			if firstLeak < w<<6 {
				d.Method, d.Pattern = ByIDDQ, pb.start+firstLeak
				return d, nil
			}
			continue // neither leak nor excitation in this chunk
		}
		sc.propagateSeeds(seeds, pb.vals)
		if method, pattern, ok := sd.resolve(w); ok {
			d.Method, d.Pattern = method, pattern
			return d, nil
		}
	}
	return d, nil
}

// runPackedGrouped sweeps the faults selected by idxs with fault
// packing: up to plan.groups simulable faults seed disjoint lane groups
// of the replicated baseline and resolve in one shared propagation
// pass. Faults whose leak decides at or before their excitation floor
// resolve at seed time and never occupy a group slot. A non-nil sig
// keeps every excited fault in its slot, propagates without seed
// early-retirement and records each fault's full signature from its
// group's lane masks before resolving the identical Detection.
func (s *Simulator) runPackedGrouped(ctx context.Context, faults []core.Fault, idxs []int, gb *packedGroupBase, sc *packedScratch, useIDDQ bool, sig *SignatureCapture, sink *progressSink, out []Detection) error {
	w := sc.w
	seeds := sc.seedBuf(gb.groups)[:0]
	batchDetected := 0
	batchStart := sc.lifetimeEvals()
	flush := func() {
		if len(seeds) == 0 {
			return
		}
		sc.capture = sig != nil
		sc.propagateSeeds(seeds, gb.vals)
		sc.capture = false
		for si := range seeds {
			sd := &seeds[si]
			if sig != nil {
				sig.orLanes(sd.out, sd.patOff, sd.diff[:w], false)
				sig.orLanes(sd.out, sd.patOff, sd.leak[:w], true)
			}
			if method, pattern, ok := sd.resolve(w); ok {
				out[sd.out].Method, out[sd.out].Pattern = method, pattern
				batchDetected++
			}
		}
		sink.add(len(seeds), batchDetected, 0, sc.lifetimeEvals()-batchStart)
		seeds = seeds[:0]
		batchDetected = 0
		batchStart = sc.lifetimeEvals()
	}
	for _, i := range idxs {
		if err := ctx.Err(); err != nil {
			return err
		}
		f := faults[i]
		out[i] = Detection{Fault: f, Pattern: -1}
		if !transistorSimulable(f) {
			sink.add(1, 0, 1, 0)
			continue
		}
		gi, lut, err := s.resolvePackedFault(f, sc)
		if err != nil {
			return err
		}
		sc.runs++
		g := len(seeds)
		seeds = seeds[:g+1]
		sd := &seeds[g]
		sd.out = i
		before := sc.lifetimeEvals()
		sc.seedChunk(sd, gi, lut, gb.masks[g], -g*gb.span, gb.vals, useIDDQ)
		if sig != nil {
			if !sd.live {
				// No excited lane: the signature is leak-only and the
				// slot can serve the next fault.
				sig.orLanes(i, sd.patOff, sd.leak[:w], true)
				detected := 0
				if method, pattern, ok := sd.resolve(w); ok {
					out[i].Method, out[i].Pattern = method, pattern
					detected = 1
				}
				seeds = seeds[:g]
				delta := sc.lifetimeEvals() - before
				batchStart += delta // keep the batch delta clean of this fault
				sink.add(1, detected, 0, delta)
				continue
			}
		} else if firstLeak := logic.FirstLaneBlock(sd.leak[:w]); firstLeak <= sd.floor {
			// Resolved at seed time: release the slot for the next fault.
			detected := 0
			if firstLeak < w<<6 {
				out[i].Method, out[i].Pattern = ByIDDQ, sd.patOff+firstLeak
				detected = 1
			}
			seeds = seeds[:g]
			delta := sc.lifetimeEvals() - before
			batchStart += delta // keep the batch delta clean of this fault
			sink.add(1, detected, 0, delta)
			continue
		}
		if len(seeds) == gb.groups {
			flush()
		}
	}
	flush()
	return nil
}

// runTransistorPacked is the serial packed campaign driver.
func (s *Simulator) runTransistorPacked(ctx context.Context, faults []core.Fault, patterns []Pattern, useIDDQ bool) ([]Detection, error) {
	sink := s.progressSink("transistor", len(faults))
	sig := s.Signatures
	if sig != nil {
		if err := sig.check(len(faults), len(patterns)); err != nil {
			return nil, err
		}
	}
	pl := s.packedPlanFor(faults, patterns)
	sc := s.packedScratchOf()
	sc.ensure(pl.w)
	defer s.putPackedScratch(sc)
	sink.add(0, 0, 0, pl.baseEvals(len(s.C.Gates)))
	out := make([]Detection, len(faults))
	if pl.gb != nil {
		idxs := make([]int, len(faults))
		for i := range idxs {
			idxs[i] = i
		}
		if err := s.runPackedGrouped(ctx, faults, idxs, pl.gb, sc, useIDDQ, sig, sink, out); err != nil {
			return nil, err
		}
		return out, nil
	}
	for i, f := range faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		before := sc.lifetimeEvals()
		d, err := s.simulateTransistorFaultPacked(f, i, pl.bases, sc, useIDDQ, sig)
		if err != nil {
			return nil, err
		}
		out[i] = d
		sink.add(1, b2i(d.Detected()), b2i(!transistorSimulable(f)), sc.lifetimeEvals()-before)
	}
	return out, nil
}

// blockGateIndex decodes one gate's ternary LUT index for a single lane
// of a width-w block.
func blockGateIndex(cc *logic.CompiledCircuit, gi, w, lane int, vals []logic.PackedVec) int {
	idx := 0
	for k, nid := range cc.Fanin[gi] {
		idx += int(vals[nid*w+lane>>6].Get(lane&63)) * logic.Pow3(k)
	}
	return idx
}

// runTwoPatternPacked replays pattern pairs through the stuck-open
// transition LUTs with packed block propagation: the faulty gate's
// charge-state trajectory is still decoded per lane (the Mealy state is
// radix-3 over internal node labels and does not vectorise), but the
// expensive downstream propagation of the test pattern covers all lanes
// of a block in one pass. Cancellation is checked between faults;
// progress is reported per fault on the "two_pattern" stage.
func (s *Simulator) runTwoPatternPacked(ctx context.Context, faults []core.Fault, pairs [][2]Pattern) ([]Detection, error) {
	sink := s.progressSink("two_pattern", len(faults))
	out := make([]Detection, len(faults))
	hasOpen := false
	for i, f := range faults {
		out[i] = Detection{Fault: f, Pattern: -1}
		if tf, ok := f.Kind.TFault(); ok && tf == logic.TFaultOpen {
			hasOpen = true
		}
	}
	if !hasOpen {
		sink.add(len(faults), 0, len(faults), 0)
		return out, nil // nothing to simulate: skip the baseline evals
	}
	firsts := make([]Pattern, len(pairs))
	seconds := make([]Pattern, len(pairs))
	for k, pair := range pairs {
		firsts[k], seconds[k] = pair[0], pair[1]
	}
	w := s.laneWordsFor(len(pairs), 1)
	bases0 := s.packedBaselines(firsts, w)
	bases1 := s.packedBaselines(seconds, w)
	cc := s.compiled()
	sc := s.packedScratchOf()
	sc.ensure(w)
	defer s.putPackedScratch(sc)
	sink.add(0, 0, 0, uint64(len(bases0)+len(bases1))*uint64(len(s.C.Gates))*uint64(w))
	totalRuns := uint64(0)
	defer func() { engineStats.twoPatternRuns.Add(totalRuns) }()
	for i, f := range faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tf, ok := f.Kind.TFault()
		if !ok || tf != logic.TFaultOpen {
			sink.add(1, 0, 1, 0)
			continue
		}
		gi, ok := s.gateIdx[f.Gate]
		if !ok {
			return nil, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
		}
		lut := compiledOpenLUT(s.C.Gates[gi].Kind, f.Transistor)
		before := sc.lifetimeEvals()
		on := cc.GateOut[gi]
		seeds := sc.seedBuf(1)
		sd := &seeds[0]
		for ci := range bases0 {
			pb0, pb1 := &bases0[ci], &bases1[ci]
			n := len(pairs) - pb0.start
			if n > 64*w {
				n = 64 * w
			}
			sd.gi, sd.onet, sd.patOff = gi, on, pb1.start
			for j := 0; j < w; j++ {
				sd.mask[j] = pb1.valid[j]
				sd.leak[j], sd.diff[j] = 0, 0
				sd.fout[j] = pb1.vals[on*w+j]
			}
			for lane := 0; lane < n; lane++ {
				totalRuns++
				st := lut.next[int(lut.init)*lut.nVec+blockGateIndex(cc, gi, w, lane, pb0.vals)]
				v := lut.out[int(st)*lut.nVec+blockGateIndex(cc, gi, w, lane, pb1.vals)]
				sd.fout[lane>>6] = sd.fout[lane>>6].WithLane(lane&63, v)
			}
			var exc [logic.MaxLaneWords]uint64
			for j := 0; j < w; j++ {
				b := pb1.vals[on*w+j]
				exc[j] = ((sd.fout[j].Val ^ b.Val) | (sd.fout[j].Known ^ b.Known)) & sd.mask[j]
			}
			sd.floor = logic.FirstLaneBlock(exc[:w])
			if sd.floor == w<<6 {
				continue // no lane excites in this chunk
			}
			sd.live = true
			sc.propagateSeeds(seeds, pb1.vals)
			if lane := logic.FirstLaneBlock(sd.diff[:w]); lane < w<<6 {
				out[i].Method = ByTwoPattern
				out[i].Pattern = pb1.start + lane
				break
			}
		}
		sink.add(1, b2i(out[i].Detected()), 0, sc.lifetimeEvals()-before)
	}
	return out, nil
}
