package faultsim

import (
	"sync"

	"cpsinw/internal/core"
)

// Progress is a monotone snapshot of one running campaign stage. Done
// counts completed work units (faults for transistor and bridge
// campaigns, patterns for the chunked stuck-at sweep); Detected the
// units that ended in a detection; Dropped the faults skipped without
// simulation because their kind is out of scope for the stage (line
// faults handed to a transistor campaign, analog-only kinds). GateEvals
// counts engine-native gate evaluations attributable to the stage so
// far — scalar LUT lookups for the compiled engine, packed evaluations
// (each covering up to 64 pattern lanes) for the packed engine, full
// hooked-map gate evaluations for the reference oracle — so rates are
// comparable within an engine, not across engines.
type Progress struct {
	Stage     string
	Done      int
	Total     int
	Detected  int
	Dropped   int
	GateEvals uint64
}

// ProgressFunc receives campaign progress snapshots. Invocations are
// serialized by the simulator (even under RunTransistorParallel) and
// snapshots are monotone in every field; the callback must not call
// back into the simulator.
type ProgressFunc func(Progress)

// progressSink folds concurrent per-unit deltas into monotone
// snapshots. The callback runs under the sink mutex: delivery order is
// total, and a slow consumer backpressures the reporting workers
// instead of reordering or dropping updates. A nil sink is inert, so
// drivers thread it unconditionally.
type progressSink struct {
	mu  sync.Mutex
	fn  ProgressFunc
	cur Progress
}

// progressSink builds the stage sink, emitting an initial zero-done
// snapshot so consumers learn the stage total before the first unit
// lands.
func (s *Simulator) progressSink(stage string, total int) *progressSink {
	if s.Progress == nil {
		return nil
	}
	ps := &progressSink{fn: s.Progress, cur: Progress{Stage: stage, Total: total}}
	ps.fn(ps.cur)
	return ps
}

// add folds one delta and delivers the resulting snapshot.
func (ps *progressSink) add(done, detected, dropped int, evals uint64) {
	if ps == nil {
		return
	}
	ps.mu.Lock()
	ps.cur.Done += done
	ps.cur.Detected += detected
	ps.cur.Dropped += dropped
	ps.cur.GateEvals += evals
	snap := ps.cur
	ps.fn(snap)
	ps.mu.Unlock()
}

// transistorSimulable reports whether the transistor campaigns simulate
// this fault kind at all (the complement is counted as Dropped).
func transistorSimulable(f core.Fault) bool {
	if f.Kind.IsLineFault() {
		return false
	}
	_, ok := f.Kind.TFault()
	return ok
}
