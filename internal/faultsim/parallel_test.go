package faultsim

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

func TestParallelMatchesSerial(t *testing.T) {
	c := bench.RippleCarryAdder(4)
	sim := New(c)
	faults := core.Universe(c, core.UniverseOptions{ChannelBreak: true, Polarity: true, StuckOn: true})
	pats := randomTestPatterns(c, 48)

	serial, err := sim.RunTransistor(faults, pats, true)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := sim.RunTransistorParallel(context.Background(), faults, pats, true, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Method != parallel[i].Method || serial[i].Pattern != parallel[i].Pattern {
			t.Errorf("fault %v: serial %v@%d vs parallel %v@%d",
				serial[i].Fault, serial[i].Method, serial[i].Pattern,
				parallel[i].Method, parallel[i].Pattern)
		}
	}
}

func TestParallelSingleWorkerFallsBack(t *testing.T) {
	c := bench.FullAdderCP()
	sim := New(c)
	faults := core.Universe(c, core.UniverseOptions{Polarity: true})
	ds, err := sim.RunTransistorParallel(context.Background(), faults, ExhaustivePatterns(c), true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cov := Summarise(ds); cov.Detected == 0 {
		t.Error("single-worker run detected nothing")
	}
}

func TestParallelMoreWorkersThanFaults(t *testing.T) {
	c := bench.FullAdderCP()
	sim := New(c)
	faults := core.Universe(c, core.UniverseOptions{Polarity: true})
	pats := ExhaustivePatterns(c)

	serial, err := sim.RunTransistor(faults, pats, true)
	if err != nil {
		t.Fatal(err)
	}
	// Far more workers than faults: the pool must clamp, not spawn idle
	// goroutines or deadlock on the unbuffered job channel.
	parallel, err := sim.RunTransistorParallel(context.Background(), faults, pats, true, 10*len(faults))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Method != parallel[i].Method || serial[i].Pattern != parallel[i].Pattern {
			t.Errorf("fault %v: serial %v@%d vs parallel %v@%d",
				serial[i].Fault, serial[i].Method, serial[i].Pattern,
				parallel[i].Method, parallel[i].Pattern)
		}
	}
}

func TestParallelEmptyFaultList(t *testing.T) {
	c := bench.FullAdderCP()
	sim := New(c)
	ds, err := sim.RunTransistorParallel(context.Background(), nil, ExhaustivePatterns(c), true, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Errorf("expected no detections, got %d", len(ds))
	}
}

func TestParallelCancelled(t *testing.T) {
	c := bench.RippleCarryAdder(4)
	sim := New(c)
	faults := core.Universe(c, core.UniverseOptions{ChannelBreak: true, Polarity: true, StuckOn: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.RunTransistorParallel(ctx, faults, randomTestPatterns(c, 48), true, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("expected context.Canceled, got %v", err)
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	c := bench.FullAdderCP()
	sim := New(c)
	bad := []core.Fault{
		{Kind: core.FaultChannelBreak, Gate: "nonexistent", Transistor: "t1"},
		{Kind: core.FaultChannelBreak, Gate: "nonexistent", Transistor: "t2"},
	}
	if _, err := sim.RunTransistorParallel(context.Background(), bad, ExhaustivePatterns(c), true, 4); err == nil {
		t.Error("unknown gate accepted")
	}
}

func randomTestPatterns(c *logic.Circuit, n int) []Pattern {
	rng := rand.New(rand.NewSource(7))
	out := make([]Pattern, n)
	for k := range out {
		p := Pattern{}
		for _, pi := range c.Inputs {
			p[pi] = logic.FromBool(rng.Intn(2) == 1)
		}
		out[k] = p
	}
	return out
}
