// Signature capture: per-fault pattern-detection bitsets harvested
// while a campaign runs, so building a fault dictionary needs no second
// simulation pass. A capture hangs off Simulator.Signatures; every
// engine driver (reference, compiled, packed — serial, grouped and
// parallel) honours it. With a capture attached the engines keep
// simulating past the first detection (fault dropping and the packed
// seed early-retirement are disabled) and the Detection results are
// re-derived from the full bitsets with the same precedence the scalar
// sweep applies — per pattern the leak check precedes the output
// compare, across patterns the earliest wins — so detections stay
// bit-identical to an uncaptured run, which the differential suites
// enforce.
package faultsim

import (
	"fmt"
	"math/bits"
)

// SignatureCapture accumulates one campaign's per-fault signatures:
// for fault index i (position in the campaign's fault list) and
// pattern index k, Out records a definite primary-output difference
// and Leak an IDDQ-leak signature (leaks are only recorded when the
// campaign observes IDDQ). The bitsets are flat fault-major []uint64
// planes, preallocated up front; concurrent workers write disjoint
// fault rows, so no locking is needed.
type SignatureCapture struct {
	NFaults   int
	NPatterns int

	words int // words per fault row
	out   []uint64
	leak  []uint64
}

// NewSignatureCapture sizes a capture for one campaign.
func NewSignatureCapture(nFaults, nPatterns int) *SignatureCapture {
	w := (nPatterns + 63) / 64
	return &SignatureCapture{
		NFaults:   nFaults,
		NPatterns: nPatterns,
		words:     w,
		out:       make([]uint64, nFaults*w),
		leak:      make([]uint64, nFaults*w),
	}
}

// Words is the per-fault row width in 64-bit words.
func (c *SignatureCapture) Words() int { return c.words }

// Out returns fault i's output-detection bitset (live view, one word
// per 64 patterns).
func (c *SignatureCapture) Out(i int) []uint64 {
	return c.out[i*c.words : (i+1)*c.words : (i+1)*c.words]
}

// Leak returns fault i's IDDQ-detection bitset (live view).
func (c *SignatureCapture) Leak(i int) []uint64 {
	return c.leak[i*c.words : (i+1)*c.words : (i+1)*c.words]
}

// check validates the capture against a campaign's dimensions; drivers
// call it on entry so a mis-sized capture fails loudly instead of
// recording bits for the wrong faults.
func (c *SignatureCapture) check(nFaults, nPatterns int) error {
	if c.NFaults != nFaults || c.NPatterns != nPatterns {
		return fmt.Errorf("faultsim: signature capture sized %dx%d, campaign is %dx%d",
			c.NFaults, c.NPatterns, nFaults, nPatterns)
	}
	return nil
}

// setOut marks pattern k as output-detecting for fault i.
func (c *SignatureCapture) setOut(i, k int) {
	c.out[i*c.words+k>>6] |= 1 << uint(k&63)
}

// setLeak marks pattern k as IDDQ-detecting for fault i.
func (c *SignatureCapture) setLeak(i, k int) {
	c.leak[i*c.words+k>>6] |= 1 << uint(k&63)
}

// orOutWord folds a 64-pattern detection word into fault i's row; base
// is the chunk's first pattern index and must be 64-aligned (the
// packed chunk layout guarantees it).
func (c *SignatureCapture) orOutWord(i, base int, m uint64) {
	c.out[i*c.words+base>>6] |= m
}

// orLanes folds a lane-block mask into fault i's row: lane l in words
// maps to pattern patOff+l. Word-aligned offsets (the ungrouped packed
// chunks) take the direct OR path; fault-packed groups carry negative
// unaligned offsets and fold bit by bit.
func (c *SignatureCapture) orLanes(i int, patOff int, words []uint64, leak bool) {
	dst := c.out
	if leak {
		dst = c.leak
	}
	row := i * c.words
	if patOff >= 0 && patOff&63 == 0 {
		off := patOff >> 6
		for j, m := range words {
			if m != 0 {
				dst[row+off+j] |= m
			}
		}
		return
	}
	for j, m := range words {
		for m != 0 {
			l := j<<6 + bits.TrailingZeros64(m)
			m &= m - 1
			k := patOff + l
			dst[row+k>>6] |= 1 << uint(k&63)
		}
	}
}

// firstDetection re-derives a fault's Detection from its captured
// bitsets with the scalar observation order: per pattern leak (when
// IDDQ is observed) precedes the output compare; across patterns the
// earliest detecting pattern wins.
func (c *SignatureCapture) firstDetection(i int) (DetectMethod, int) {
	row := i * c.words
	for j := 0; j < c.words; j++ {
		m := c.out[row+j] | c.leak[row+j]
		if m == 0 {
			continue
		}
		k := j<<6 + bits.TrailingZeros64(m)
		if c.leak[row+j]>>uint(k&63)&1 == 1 {
			return ByIDDQ, k
		}
		return ByOutput, k
	}
	return ByNone, -1
}
