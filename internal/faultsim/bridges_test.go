package faultsim

import (
	"strings"
	"testing"

	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

func TestBridgeResolve(t *testing.T) {
	cases := []struct {
		k      core.BridgeKind
		a, b   logic.V
		wa, wb logic.V
	}{
		{core.BridgeWiredAND, logic.L1, logic.L0, logic.L0, logic.L0},
		{core.BridgeWiredAND, logic.L1, logic.L1, logic.L1, logic.L1},
		{core.BridgeWiredAND, logic.LX, logic.L1, logic.LX, logic.LX},
		{core.BridgeWiredAND, logic.LX, logic.L0, logic.L0, logic.L0},
		{core.BridgeWiredOR, logic.L1, logic.L0, logic.L1, logic.L1},
		{core.BridgeWiredOR, logic.L0, logic.L0, logic.L0, logic.L0},
		{core.BridgeADominates, logic.L1, logic.L0, logic.L1, logic.L1},
		{core.BridgeBDominates, logic.L1, logic.L0, logic.L0, logic.L0},
	}
	for _, c := range cases {
		ga, gb := c.k.Resolve(c.a, c.b)
		if ga != c.wa || gb != c.wb {
			t.Errorf("%v.Resolve(%v,%v) = %v,%v want %v,%v", c.k, c.a, c.b, ga, gb, c.wa, c.wb)
		}
	}
}

func TestBridgeKindString(t *testing.T) {
	for k, want := range map[core.BridgeKind]string{
		core.BridgeWiredAND: "wired-AND", core.BridgeWiredOR: "wired-OR",
		core.BridgeADominates: "A-dom", core.BridgeBDominates: "B-dom",
	} {
		if k.String() != want {
			t.Errorf("%d: %q", int(k), k.String())
		}
	}
}

func TestNeighborBridges(t *testing.T) {
	c := parse(t, c17ish)
	bs := core.NeighborBridges(c, 1)
	// 5 gates -> 4 adjacent pairs x 2 kinds.
	if len(bs) != 8 {
		t.Fatalf("bridges = %d, want 8", len(bs))
	}
	for _, b := range bs {
		if b.A == b.B {
			t.Errorf("self-bridge %v", b)
		}
		if !strings.Contains(b.String(), "bridge(") {
			t.Errorf("bad id %q", b.String())
		}
	}
}

func TestBridgeDetection(t *testing.T) {
	// Two independent inverter chains bridged together: wired-AND flips
	// the 1-carrying net whenever the other carries 0.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(x)
OUTPUT(y)
x = NOT(a)
y = NOT(b)
`
	c := parse(t, src)
	sim := New(c)
	bridges := []core.Bridge{
		{Kind: core.BridgeWiredAND, A: "x", B: "y"},
		{Kind: core.BridgeWiredOR, A: "x", B: "y"},
	}
	ds := sim.RunBridges(bridges, ExhaustivePatterns(c))
	for _, d := range ds {
		if !d.Detected {
			t.Errorf("%v not detected by exhaustive patterns", d.Bridge)
		}
	}
	cov := BridgeCoverage(ds)
	if cov.Percent() != 100 {
		t.Errorf("coverage %.1f%%", cov.Percent())
	}
	// A pattern where both nets agree cannot detect: check soundness of
	// the reported detecting pattern.
	for _, d := range ds {
		p := ExhaustivePatterns(c)[d.Pattern]
		good := c.Eval(map[string]logic.V(p))
		if good["x"] == good["y"] {
			t.Errorf("%v: reported pattern does not excite the bridge", d.Bridge)
		}
	}
}

func TestBridgeOnC17(t *testing.T) {
	c := parse(t, c17ish)
	sim := New(c)
	bridges := core.NeighborBridges(c, 2)
	ds := sim.RunBridges(bridges, ExhaustivePatterns(c))
	cov := BridgeCoverage(ds)
	if cov.Detected == 0 {
		t.Fatal("no bridge detected on c17-like circuit")
	}
	// Every detection must be reproducible.
	patterns := ExhaustivePatterns(c)
	for _, d := range ds {
		if !d.Detected {
			continue
		}
		p := patterns[d.Pattern]
		good := c.Eval(map[string]logic.V(p))
		faulty := evalBridged(c, p, d.Bridge, nil)
		if !sim.outputsDiffer(good, faulty) {
			t.Errorf("%v: detection not reproducible", d.Bridge)
		}
	}
}
