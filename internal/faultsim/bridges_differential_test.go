package faultsim

import (
	"context"
	"math/rand"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

// The compiled dense-net and packed 64-way bridge engines must be
// bit-identical to the hooked fixpoint oracle: same Detected flag, same
// Method AND same first detecting pattern for every bridge, on
// arbitrary circuits, bridge lists (all four resolution kinds,
// including bridges naming nets absent from the circuit) and ternary
// pattern sets, with and without IDDQ observation.

// randomBridges draws bridge instances over the circuit's nets: every
// resolution kind, occasional self-bridges and occasional "ghost" ends
// naming no net at all (which the oracle reads as constant 0 — a
// semantics the fast engines must reproduce exactly).
func randomBridges(rng *rand.Rand, c *logic.Circuit, n int) []core.Bridge {
	nets := c.Nets()
	pick := func() string {
		if rng.Intn(20) == 0 {
			return "ghost_net"
		}
		return nets[rng.Intn(len(nets))]
	}
	out := make([]core.Bridge, n)
	for i := range out {
		out[i] = core.Bridge{
			Kind: core.BridgeKind(rng.Intn(4)),
			A:    pick(),
			B:    pick(),
		}
	}
	return out
}

func diffBridgeDetections(t *testing.T, label string, ref, got []BridgeDetection) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d vs %d detections", label, len(ref), len(got))
	}
	for i := range ref {
		if ref[i].Detected != got[i].Detected || ref[i].Method != got[i].Method || ref[i].Pattern != got[i].Pattern {
			t.Errorf("%s: bridge %v: reference (%v, %q, %d) vs %s (%v, %q, %d)",
				label, ref[i].Bridge,
				ref[i].Detected, ref[i].Method, ref[i].Pattern,
				label, got[i].Detected, got[i].Method, got[i].Pattern)
		}
	}
}

// TestDifferentialBridgeEngines runs hundreds of random bridge
// campaigns through all three engines and requires bit-identical
// BridgeDetection results.
func TestDifferentialBridgeEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	cases := 150 // x2 IDDQ modes = 300 campaign comparisons per engine
	if testing.Short() {
		cases = 40
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 3+rng.Intn(7), 1+rng.Intn(28))
		bridges := randomBridges(rng, c, 1+rng.Intn(30))
		patterns := randomTernaryPatterns(rng, c, 1+rng.Intn(24))

		for _, useIDDQ := range []bool{false, true} {
			ref := New(c)
			ref.Engine = EngineReference
			want, err := ref.RunBridgesObserved(context.Background(), bridges, patterns, useIDDQ)
			if err != nil {
				t.Fatalf("case %d: reference: %v", ci, err)
			}
			for _, eng := range fastEngines {
				cmp := New(c)
				cmp.Engine = eng
				got, err := cmp.RunBridgesObserved(context.Background(), bridges, patterns, useIDDQ)
				if err != nil {
					t.Fatalf("case %d: %v: %v", ci, eng, err)
				}
				diffBridgeDetections(t, c.Name+"/"+eng.String(), want, got)
			}
		}
	}
}

// TestDifferentialBridgesNeighbor locks the realistic workload: the
// neighbour-extracted bridge lists the campaigns actually run, against
// exhaustive patterns, across all three engines.
func TestDifferentialBridgesNeighbor(t *testing.T) {
	for _, c := range []*logic.Circuit{bench.C17(), bench.FullAdderCP(), bench.TMRVoter()} {
		bridges := core.NeighborBridges(c, 3)
		patterns := ExhaustivePatterns(c)
		ref := New(c)
		ref.Engine = EngineReference
		want, err := ref.RunBridgesObserved(context.Background(), bridges, patterns, true)
		if err != nil {
			t.Fatal(err)
		}
		if BridgeCoverage(want).Detected == 0 {
			t.Fatalf("%s: no bridge detected; the case proves nothing", c.Name)
		}
		for _, eng := range fastEngines {
			cmp := New(c)
			cmp.Engine = eng
			got, err := cmp.RunBridgesObserved(context.Background(), bridges, patterns, true)
			if err != nil {
				t.Fatal(err)
			}
			diffBridgeDetections(t, c.Name+"/"+eng.String(), want, got)
		}
	}
}
