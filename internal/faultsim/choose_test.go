package faultsim

import (
	"context"
	"math/rand"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
)

// TestChooseEngineBoundaries pins the chooser's decision surface at the
// exact boundaries of its calibrated constants: one step to either side
// of every threshold must flip (or hold) the choice as documented in
// choose.go. When the constants are recalibrated from a new
// BENCH_faultsim.json scaling run, this table is the place that must
// move with them.
func TestChooseEngineBoundaries(t *testing.T) {
	cases := []struct {
		name                    string
		gates, faults, patterns int
		want                    Engine
	}{
		{"few faults", 100, 3, 1024, EngineCompiled},
		{"few patterns", 100, 1024, 8, EngineCompiled},
		{"wide pattern block", 100, 32, 32, EnginePacked},
		{"wide patterns, thin work", 100, 4, 32, EngineCompiled},
		{"fault-packed small circuit", 1000, 512, 9, EnginePacked},
		{"fault-packed boundary gates", 2048, 512, 9, EnginePacked},
		{"big circuit, skinny patterns", 2049, 512, 9, EngineCompiled},
		{"small everything", 10, 4, 9, EngineCompiled},
	}
	for _, tc := range cases {
		if got := ChooseEngine(tc.gates, tc.faults, tc.patterns); got != tc.want {
			t.Errorf("%s: ChooseEngine(%d, %d, %d) = %v, want %v",
				tc.name, tc.gates, tc.faults, tc.patterns, got, tc.want)
		}
	}
}

// TestChooserBoundaryDifferential runs campaigns sized exactly at the
// chooser's decision boundaries through the full engine set: whichever
// side of a threshold a campaign lands on, auto must stay bit-identical
// to the oracle (and to both engines it chooses between).
func TestChooserBoundaryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(8088))
	sizes := []struct{ faults, patterns int }{
		{3, 64}, {4, 64}, {16, 8}, {16, 9}, {32, 32}, {31, 32}, {128, 9},
	}
	for si, sz := range sizes {
		c := bench.Random(rng.Int63(), 5, 20)
		universe := core.Universe(c, core.UniverseOptions{
			ChannelBreak: true, StuckOn: true, Polarity: true,
		})
		faults := subsample(rng, universe, sz.faults)
		patterns := randomTernaryPatterns(rng, c, sz.patterns)

		ref := New(c)
		ref.Engine = EngineReference
		want, err := ref.RunTransistor(faults, patterns, true)
		if err != nil {
			t.Fatalf("size %d: reference: %v", si, err)
		}
		for _, eng := range fastEngines {
			cmp := New(c)
			cmp.Engine = eng
			got, err := cmp.RunTransistor(faults, patterns, true)
			if err != nil {
				t.Fatalf("size %d: %v: %v", si, eng, err)
			}
			diffDetections(t, c.Name+"/"+eng.String(), want, got)
		}
	}
}

// TestPackedLaneWidthInvariance: the lane-block width (1, 2 or 4 words
// of 64 lanes) is an implementation detail. Every width must return
// bit-identical detections on the same campaign, serial and parallel.
func TestPackedLaneWidthInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(256256))
	cases := 20
	if testing.Short() {
		cases = 6
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 4+rng.Intn(6), 5+rng.Intn(30))
		universe := core.Universe(c, core.UniverseOptions{
			ChannelBreak: true, StuckOn: true, Polarity: true,
		})
		faults := subsample(rng, universe, 50)
		// 65..200 patterns: at width 1 this spans 2-4 chunks, at width 4
		// a single block, so chunk iteration and tail masking both move.
		patterns := randomTernaryPatterns(rng, c, 65+rng.Intn(136))
		useIDDQ := ci%2 == 0

		var base []Detection
		for _, w := range []int{1, 2, 4} {
			sim := New(c)
			sim.Engine = EnginePacked
			sim.LaneWords = w
			got, err := sim.RunTransistor(faults, patterns, useIDDQ)
			if err != nil {
				t.Fatalf("case %d: width %d: %v", ci, w, err)
			}
			if base == nil {
				base = got
				continue
			}
			diffDetections(t, c.Name+"/w1-vs-w"+string(rune('0'+w)), base, got)

			par, err := sim.RunTransistorParallel(context.Background(), faults, patterns, useIDDQ, 4)
			if err != nil {
				t.Fatalf("case %d: width %d parallel: %v", ci, w, err)
			}
			diffDetections(t, c.Name+"/parallel-w"+string(rune('0'+w)), base, par)
		}
	}
}

// TestFaultPackedParity: with few patterns and many faults the packed
// engine packs several faults into disjoint lane groups of one block;
// with the same patterns at width 1 above the 32-pattern grouping cutoff
// it runs one fault per pass. Both shapes must match the oracle exactly
// — fault packing is a placement optimisation, never a semantic one.
func TestFaultPackedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	cases := 20
	if testing.Short() {
		cases = 6
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 4+rng.Intn(5), 8+rng.Intn(25))
		universe := core.Universe(c, core.UniverseOptions{
			ChannelBreak: true, StuckOn: true, Polarity: true,
		})
		faults := subsample(rng, universe, 40)
		// 33..64 patterns: ungrouped at width 1 (> 32 patterns/group
		// cutoff), fault-packed at widths 2 and 4.
		nPats := 33 + rng.Intn(32)
		patterns := randomTernaryPatterns(rng, c, nPats)
		useIDDQ := ci%2 == 0

		if g := packGroups(nPats, len(faults), 1); g != 1 {
			t.Fatalf("case %d: width 1 unexpectedly grouped (%d)", ci, g)
		}
		if g := packGroups(nPats, len(faults), 4); g < 2 {
			t.Fatalf("case %d: width 4 not grouped (%d groups, %d patterns)", ci, g, nPats)
		}

		ref := New(c)
		ref.Engine = EngineReference
		want, err := ref.RunTransistor(faults, patterns, useIDDQ)
		if err != nil {
			t.Fatalf("case %d: reference: %v", ci, err)
		}
		for _, w := range []int{1, 2, 4} {
			sim := New(c)
			sim.Engine = EnginePacked
			sim.LaneWords = w
			got, err := sim.RunTransistor(faults, patterns, useIDDQ)
			if err != nil {
				t.Fatalf("case %d: width %d: %v", ci, w, err)
			}
			diffDetections(t, c.Name+"/serial", want, got)
			got, err = sim.RunTransistorParallel(context.Background(), faults, patterns, useIDDQ, 4)
			if err != nil {
				t.Fatalf("case %d: width %d parallel: %v", ci, w, err)
			}
			diffDetections(t, c.Name+"/parallel", want, got)
		}
	}
}
