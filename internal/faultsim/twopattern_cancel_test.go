package faultsim

import (
	"context"
	"errors"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
)

// twoPatternCampaign builds a channel-break campaign with several open
// faults and enough pairs that cancellation can land mid-run.
func twoPatternCampaign(t *testing.T) (*Simulator, []core.Fault, [][2]Pattern) {
	t.Helper()
	c := bench.C17()
	faults := core.Universe(c, core.UniverseOptions{ChannelBreak: true})
	if len(faults) < 2 {
		t.Fatalf("campaign needs >= 2 open faults, have %d", len(faults))
	}
	pats := ExhaustivePatterns(c)
	pairs := make([][2]Pattern, 0, len(pats)-1)
	for k := 0; k+1 < len(pats); k++ {
		pairs = append(pairs, [2]Pattern{pats[k], pats[k+1]})
	}
	return New(c), faults, pairs
}

// allEngines is every selectable engine, including the auto chooser.
var allEngines = []Engine{EngineReference, EngineCompiled, EnginePacked, EngineAuto}

// TestTwoPatternCanceledContext: a canceled context aborts the campaign
// on every engine path before any fault is swept.
func TestTwoPatternCanceledContext(t *testing.T) {
	for _, eng := range allEngines {
		sim, faults, pairs := twoPatternCampaign(t)
		sim.Engine = eng
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		out, err := sim.RunTwoPatternContext(ctx, faults, pairs)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", eng, err)
		}
		if out != nil {
			t.Errorf("%v: returned %d detections after cancellation", eng, len(out))
		}
	}
}

// TestTwoPatternMidCampaignCancel cancels from the progress callback
// after the first fault completes — the way a service deadline lands
// mid-stage — and requires every engine path to stop between faults
// with the context's error.
func TestTwoPatternMidCampaignCancel(t *testing.T) {
	for _, eng := range allEngines {
		sim, faults, pairs := twoPatternCampaign(t)
		sim.Engine = eng
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		lastDone := -1
		sim.Progress = func(p Progress) {
			lastDone = p.Done
			if p.Done >= 1 {
				cancel()
			}
		}
		out, err := sim.RunTwoPatternContext(ctx, faults, pairs)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", eng, err)
		}
		if out != nil {
			t.Errorf("%v: returned detections after mid-campaign cancellation", eng)
		}
		if lastDone < 1 || lastDone >= len(faults) {
			t.Errorf("%v: canceled after %d/%d faults, want mid-campaign", eng, lastDone, len(faults))
		}
	}
}

// TestTwoPatternProgressReported: every two-pattern engine path reports
// a complete monotone progress stream — the packed path used to skip
// the sink entirely, stalling SSE frames and stage ETAs at zero.
func TestTwoPatternProgressReported(t *testing.T) {
	for _, eng := range allEngines {
		sim, faults, pairs := twoPatternCampaign(t)
		sim.Engine = eng
		var snaps []Progress
		sim.Progress = func(p Progress) { snaps = append(snaps, p) }
		out, err := sim.RunTwoPattern(faults, pairs)
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if len(snaps) == 0 {
			t.Fatalf("%v: no progress snapshots", eng)
		}
		first, last := snaps[0], snaps[len(snaps)-1]
		if first.Stage != "two_pattern" || first.Done != 0 || first.Total != len(faults) {
			t.Errorf("%v: initial snapshot = %+v, want stage two_pattern, 0/%d", eng, first, len(faults))
		}
		if last.Done != len(faults) {
			t.Errorf("%v: final Done = %d, want %d", eng, last.Done, len(faults))
		}
		detected := 0
		for _, d := range out {
			if d.Detected() {
				detected++
			}
		}
		if last.Detected != detected {
			t.Errorf("%v: final Detected = %d, want %d", eng, last.Detected, detected)
		}
		if last.GateEvals == 0 {
			t.Errorf("%v: no gate evaluations reported", eng)
		}
		for i := 1; i < len(snaps); i++ {
			if snaps[i].Done < snaps[i-1].Done || snaps[i].Detected < snaps[i-1].Detected ||
				snaps[i].GateEvals < snaps[i-1].GateEvals {
				t.Fatalf("%v: snapshot %d not monotone: %+v -> %+v", eng, i, snaps[i-1], snaps[i])
			}
		}
	}
}
