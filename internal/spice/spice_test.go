package spice

import (
	"math"
	"testing"
	"testing/quick"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
)

func TestSolveLinearIdentityProperty(t *testing.T) {
	// Solving A x = A y must recover y for well-conditioned A.
	f := func(seed uint32) bool {
		n := 4
		a := newMatrix(n)
		y := make([]float64, n)
		r := seed
		next := func() float64 {
			r = r*1664525 + 1013904223
			return float64(r%1000)/500 - 1
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a[i][j] = next()
			}
			a[i][i] += 4 // diagonally dominant
			y[i] = next()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a[i][j] * y[j]
			}
		}
		// solveLinear clobbers a; keep going.
		if err := solveLinear(a, b); err != nil {
			return false
		}
		for i := range y {
			if math.Abs(b[i]-y[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := newMatrix(2)
	a[0][0], a[0][1] = 1, 2
	a[1][0], a[1][1] = 2, 4
	if err := solveLinear(a, []float64{1, 2}); err == nil {
		t.Error("singular matrix accepted")
	}
}

func TestResistiveDividerDC(t *testing.T) {
	n := &circuit.Netlist{}
	n.AddV("V1", "in", circuit.Ground, circuit.DC(2.0))
	n.AddR("R1", "in", "mid", 1000)
	n.AddR("R2", "mid", circuit.Ground, 1000)
	e, err := NewEngine(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := e.DC(0)
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.V("mid"); math.Abs(v-1.0) > 1e-6 {
		t.Errorf("divider mid = %v, want 1.0", v)
	}
	// Source current: 2V over 2k = 1 mA leaving the source P terminal.
	if i := sol.I("V1"); math.Abs(i+1e-3) > 1e-8 {
		t.Errorf("source current = %v, want -1e-3", i)
	}
}

func TestRCTransient(t *testing.T) {
	// Charging an RC from a step: v(t) = V(1 - exp(-t/RC)), RC = 1ns.
	n := &circuit.Netlist{}
	n.AddV("V1", "in", circuit.Ground, circuit.Pulse{V0: 0, V1: 1, Delay: 0, Rise: 1e-12, Fall: 1e-12, Width: 1})
	n.AddR("R1", "in", "out", 1000)
	n.AddC("C1", "out", circuit.Ground, 1e-12)
	e, err := NewEngine(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := e.Tran(5e-12, 5e-9, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	// After 5 time constants the output is within 1% of the rail.
	if v := FinalV(wf, "out"); math.Abs(v-1) > 0.02 {
		t.Errorf("RC final = %v, want ~1", v)
	}
	// At t = RC the response is ~63.2% (backward Euler slightly under).
	tc, err := CrossTime(wf.T, wf.V["out"], 0.632, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tc < 0.8e-9 || tc > 1.25e-9 {
		t.Errorf("time constant = %.3g, want ~1ns", tc)
	}
}

// buildINV constructs a static-polarity TIG inverter: pull-up p-type
// (PGs grounded), pull-down n-type (PGs at VDD).
func buildINV(m *device.Model, load float64) *circuit.Netlist {
	n := &circuit.Netlist{Title: "tig inverter"}
	vdd := m.P.VDD
	n.AddV("VDD", "vdd", circuit.Ground, circuit.DC(vdd))
	n.AddV("VIN", "in", circuit.Ground, circuit.Pulse{
		V0: 0, V1: vdd, Delay: 200e-12, Rise: 20e-12, Fall: 20e-12, Width: 800e-12, Period: 1600e-12,
	})
	// Pull-up: drain=vdd, source=out (p-type conducts vdd -> out).
	n.AddM("MPU", "vdd", "in", circuit.Ground, circuit.Ground, "out", m)
	// Pull-down: drain=out, source=gnd.
	n.AddM("MPD", "out", "in", "vdd", "vdd", circuit.Ground, m)
	n.AddC("CL", "out", circuit.Ground, load)
	return n
}

func TestInverterDCLevels(t *testing.T) {
	m := device.Default()
	n := buildINV(m, 2e-16)
	// Replace the pulse with static levels.
	for _, lvl := range []struct {
		vin      float64
		wantHigh bool
	}{
		{0, true},
		{m.P.VDD, false},
	} {
		n.SourceByName("VIN").W = circuit.DC(lvl.vin)
		e, err := NewEngine(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.DC(0)
		if err != nil {
			t.Fatalf("DC at vin=%v: %v", lvl.vin, err)
		}
		out := sol.V("out")
		if lvl.wantHigh && out < 0.9*m.P.VDD {
			t.Errorf("vin=%v: out=%v, want >= %v", lvl.vin, out, 0.9*m.P.VDD)
		}
		if !lvl.wantHigh && out > 0.1*m.P.VDD {
			t.Errorf("vin=%v: out=%v, want <= %v", lvl.vin, out, 0.1*m.P.VDD)
		}
	}
}

func TestInverterLeakageTiny(t *testing.T) {
	m := device.Default()
	n := buildINV(m, 2e-16)
	n.SourceByName("VIN").W = circuit.DC(0)
	e, _ := NewEngine(n, Options{})
	sol, err := e.DC(0)
	if err != nil {
		t.Fatal(err)
	}
	leak := SupplyCurrent(sol, "VDD")
	if leak > 1e-9 {
		t.Errorf("static leakage = %.3g A, want < 1 nA", leak)
	}
}

func TestInverterTransientDelay(t *testing.T) {
	m := device.Default()
	n := buildINV(m, 2e-16)
	e, err := NewEngine(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := e.Tran(1e-12, 1.6e-9, []string{"in", "out"})
	if err != nil {
		t.Fatal(err)
	}
	vdd := m.P.VDD
	// Input rises at 200ps: output must fall.
	dHL, err := PropDelay(wf, "in", "out", vdd, true, false, 0)
	if err != nil {
		t.Fatalf("no falling output edge: %v", err)
	}
	// Input falls at ~1020ps: output must rise.
	dLH, err := PropDelay(wf, "in", "out", vdd, false, true, 900e-12)
	if err != nil {
		t.Fatalf("no rising output edge: %v", err)
	}
	for name, d := range map[string]float64{"tpHL": dHL, "tpLH": dLH} {
		if d <= 0 || d > 500e-12 {
			t.Errorf("%s = %.3g s, want (0, 500ps]", name, d)
		}
	}
	// Output swings rail to rail.
	if hi := SettledV(wf, "out", 0.05); hi < 0.9*vdd {
		t.Errorf("final out = %v, want near vdd", hi)
	}
}

func TestGOSInverterDelayDegrades(t *testing.T) {
	// A GOS on the pull-down device weakens the n branch; tpHL grows.
	good := device.Default()
	n := buildINV(good, 2e-16)
	e, _ := NewEngine(n, Options{})
	wf, err := e.Tran(1e-12, 1.6e-9, []string{"in", "out"})
	if err != nil {
		t.Fatal(err)
	}
	dGood, err := PropDelay(wf, "in", "out", good.P.VDD, true, false, 0)
	if err != nil {
		t.Fatal(err)
	}

	bad := good.WithDefects(device.Defects{GOS: device.GOSAtPGS})
	nb := buildINV(good, 2e-16)
	nb.TransistorByName("MPD").Model = bad
	eb, _ := NewEngine(nb, Options{})
	wfb, err := eb.Tran(1e-12, 1.6e-9, []string{"in", "out"})
	if err != nil {
		t.Fatal(err)
	}
	dBad, err := PropDelay(wfb, "in", "out", good.P.VDD, true, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dBad <= dGood {
		t.Errorf("GOS should slow the gate: good=%.3g bad=%.3g", dGood, dBad)
	}
}

func TestCrossTimeErrors(t *testing.T) {
	if _, err := CrossTime([]float64{0}, []float64{1}, 0.5, true, 0); err == nil {
		t.Error("short waveform accepted")
	}
	if _, err := CrossTime([]float64{0, 1}, []float64{0, 0.1}, 0.5, true, 0); err == nil {
		t.Error("no-crossing waveform accepted")
	}
}

func TestEngineRejectsEmptyNetlist(t *testing.T) {
	if _, err := NewEngine(&circuit.Netlist{}, Options{}); err == nil {
		t.Error("empty netlist accepted")
	}
}
