package spice

import (
	"fmt"
	"math"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
)

// Options tune the simulator. The zero value selects the defaults.
type Options struct {
	GMin      float64 // conductance from every node to ground (default 1e-12 S)
	AbsTol    float64 // Newton residual tolerance in amps (default 1e-12)
	VTol      float64 // Newton voltage-update tolerance (default 1e-9 V)
	MaxNewton int     // Newton iteration cap per solve (default 200)
	MaxStepV  float64 // Newton update damping limit per iteration (default 0.3 V)
	DiffStep  float64 // numeric differentiation step (default 1e-6 V)
}

func (o Options) withDefaults() Options {
	if o.GMin <= 0 {
		o.GMin = 1e-12
	}
	if o.AbsTol <= 0 {
		o.AbsTol = 1e-12
	}
	if o.VTol <= 0 {
		o.VTol = 1e-9
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 200
	}
	if o.MaxStepV <= 0 {
		o.MaxStepV = 0.3
	}
	if o.DiffStep <= 0 {
		o.DiffStep = 1e-6
	}
	return o
}

// Engine simulates one netlist. Build one with NewEngine; it precomputes
// the node numbering and MNA layout.
type Engine struct {
	Net  *circuit.Netlist
	Opt  Options
	node map[string]int // node name -> index (ground absent, index -1)
	n    int            // number of non-ground nodes
	m    int            // number of voltage-source branches
}

// NewEngine validates the netlist and prepares the MNA layout.
func NewEngine(net *circuit.Netlist, opt Options) (*Engine, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{Net: net, Opt: opt.withDefaults(), node: map[string]int{}}
	for i, name := range net.Nodes() {
		e.node[name] = i
	}
	e.n = len(e.node)
	e.m = len(net.Sources)
	if e.n == 0 {
		return nil, fmt.Errorf("spice: netlist has no nodes")
	}
	return e, nil
}

// index returns the unknown-vector index of a node (-1 for ground).
func (e *Engine) index(name string) int {
	if name == circuit.Ground {
		return -1
	}
	return e.node[name]
}

// Solution is the result of one operating-point solve or one transient
// timepoint: node voltages and voltage-source branch currents.
type Solution struct {
	e *Engine
	X []float64 // node voltages then source currents
}

// V returns the voltage of a node (0 for ground and unknown names).
func (s *Solution) V(node string) float64 {
	if node == circuit.Ground {
		return 0
	}
	i, ok := s.e.node[node]
	if !ok {
		return 0
	}
	return s.X[i]
}

// I returns the current flowing through a voltage source (from its P
// terminal through the source to N; a positive supply current drawn from
// a VDD source appears negative here, as in SPICE).
func (s *Solution) I(sourceName string) float64 {
	for k, v := range s.e.Net.Sources {
		if v.Name == sourceName {
			return s.X[s.e.n+k]
		}
	}
	return 0
}

// stampState carries the per-solve assembly inputs.
type stampState struct {
	t       float64   // time for waveform evaluation
	x       []float64 // current iterate
	capV    []float64 // previous-step node voltages (transient), nil for DC
	h       float64   // timestep (transient), 0 for DC
	gshunt  float64   // extra gmin for gmin-stepping
	srcScal float64   // source scaling for source-stepping (1 normally)
	ptG     float64   // pseudo-transient damping conductance (0 off)
	ptV     []float64 // pseudo-transient anchor voltages
}

// deviceBias builds the device bias from the iterate.
func (e *Engine) deviceBias(t *circuit.Transistor, x []float64) device.Bias {
	get := func(name string) float64 {
		i := e.index(name)
		if i < 0 {
			return 0
		}
		return x[i]
	}
	return device.Bias{
		VD:   get(t.D),
		VCG:  get(t.CG),
		VPGS: get(t.PGS),
		VPGD: get(t.PGD),
		VS:   get(t.S),
	}
}

// terminalCurrents evaluates the five terminal currents of a transistor
// (into the device) at bias b: drain, cg, pgs, pgd and the source closing
// KCL.
func terminalCurrents(t *circuit.Transistor, b device.Bias) [5]float64 {
	w := t.EffectiveWidth()
	id := t.Model.ID(b) * w
	icg, ipgs, ipgd := t.Model.GateCurrents(b)
	icg, ipgs, ipgd = icg*w, ipgs*w, ipgd*w
	return [5]float64{id, icg, ipgs, ipgd, -(id + icg + ipgs + ipgd)}
}

// assemble builds the Jacobian and residual at the given state:
// J dx = -F. Returns J and F.
func (e *Engine) assemble(st stampState, jac [][]float64, f []float64) {
	zeroMatrix(jac)
	for i := range f {
		f[i] = 0
	}
	addJ := func(r, c int, v float64) {
		if r >= 0 && c >= 0 {
			jac[r][c] += v
		}
	}
	addF := func(r int, v float64) {
		if r >= 0 {
			f[r] += v
		}
	}
	getV := func(idx int) float64 {
		if idx < 0 {
			return 0
		}
		return st.x[idx]
	}

	// gmin to ground on every node.
	g := e.Opt.GMin + st.gshunt
	for i := 0; i < e.n; i++ {
		addJ(i, i, g)
		addF(i, g*st.x[i])
	}
	// Pseudo-transient damping: a conductance pulling each node toward
	// its previous settled value (backward-Euler companion of a virtual
	// node capacitance).
	if st.ptG > 0 && st.ptV != nil {
		for i := 0; i < e.n; i++ {
			addJ(i, i, st.ptG)
			addF(i, st.ptG*(st.x[i]-st.ptV[i]))
		}
	}

	for _, r := range e.Net.Resistors {
		a, b := e.index(r.A), e.index(r.B)
		gc := 1 / r.Ohms
		va, vb := getV(a), getV(b)
		addJ(a, a, gc)
		addJ(b, b, gc)
		addJ(a, b, -gc)
		addJ(b, a, -gc)
		addF(a, gc*(va-vb))
		addF(b, gc*(vb-va))
	}

	for _, c := range e.Net.Capacitors {
		if st.h <= 0 {
			continue // open in DC
		}
		a, b := e.index(c.A), e.index(c.B)
		gc := c.Farads / st.h
		va, vb := getV(a), getV(b)
		var vaOld, vbOld float64
		if a >= 0 {
			vaOld = st.capV[a]
		}
		if b >= 0 {
			vbOld = st.capV[b]
		}
		// Backward Euler companion: i = C/h * ((va-vb) - (vaOld-vbOld)).
		i := gc * ((va - vb) - (vaOld - vbOld))
		addJ(a, a, gc)
		addJ(b, b, gc)
		addJ(a, b, -gc)
		addJ(b, a, -gc)
		addF(a, i)
		addF(b, -i)
	}

	for k, v := range e.Net.Sources {
		p, q := e.index(v.P), e.index(v.N)
		row := e.n + k
		ib := st.x[row]
		// KCL: branch current leaves P, enters N.
		addJ(p, row, 1)
		addJ(q, row, -1)
		addF(p, ib)
		addF(q, -ib)
		// Branch equation: v_p - v_n = V(t) (scaled during source stepping).
		target := v.W.At(st.t) * st.srcScal
		jac[row][row] = 0
		if p >= 0 {
			jac[row][p] += 1
		}
		if q >= 0 {
			jac[row][q] -= 1
		}
		f[row] += getV(p) - getV(q) - target
	}

	for _, tr := range e.Net.Transistors {
		idx := [5]int{e.index(tr.D), e.index(tr.CG), e.index(tr.PGS), e.index(tr.PGD), e.index(tr.S)}
		b0 := e.deviceBias(tr, st.x)
		i0 := terminalCurrents(tr, b0)
		for term := 0; term < 5; term++ {
			addF(idx[term], i0[term])
		}
		// Numeric Jacobian: perturb each terminal voltage.
		hstep := e.Opt.DiffStep
		for p := 0; p < 5; p++ {
			bp := b0
			switch p {
			case 0:
				bp.VD += hstep
			case 1:
				bp.VCG += hstep
			case 2:
				bp.VPGS += hstep
			case 3:
				bp.VPGD += hstep
			case 4:
				bp.VS += hstep
			}
			ip := terminalCurrents(tr, bp)
			for term := 0; term < 5; term++ {
				gpd := (ip[term] - i0[term]) / hstep
				addJ(idx[term], idx[p], gpd)
			}
		}
	}
}

// newton runs damped Newton iterations from the iterate in x (modified in
// place), with a residual-based line search that halves the step when a
// full update would worsen the KCL residual (flat floating-node regions
// otherwise make the iteration oscillate). Returns the iteration count or
// an error.
func (e *Engine) newton(st stampState, x []float64) (int, error) {
	dim := e.n + e.m
	jac := newMatrix(dim)
	f := make([]float64, dim)
	fTrial := make([]float64, dim)
	jacTrial := newMatrix(dim)
	trial := make([]float64, dim)

	residual := func(fv []float64) float64 {
		max := 0.0
		for _, v := range fv {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
		return max
	}

	st.x = x
	e.assemble(st, jac, f)
	maxF := residual(f)
	for it := 1; it <= e.Opt.MaxNewton; it++ {
		// Solve J dx = -F (assemble clobbered jac during elimination, so
		// it is rebuilt each iteration).
		rhs := make([]float64, dim)
		for i := range f {
			rhs[i] = -f[i]
		}
		if err := solveLinear(jac, rhs); err != nil {
			return it, err
		}
		maxDx := 0.0
		for i := 0; i < e.n; i++ { // damp node voltages only
			if a := math.Abs(rhs[i]); a > maxDx {
				maxDx = a
			}
		}
		scale := 1.0
		if maxDx > e.Opt.MaxStepV {
			scale = e.Opt.MaxStepV / maxDx
		}

		// Line search: accept the largest step (scale, scale/2, ...) that
		// does not blow up the residual.
		accepted := false
		for ls := 0; ls < 6; ls++ {
			copy(trial, x)
			for i := range trial {
				trial[i] += scale * rhs[i]
			}
			st.x = trial
			e.assemble(st, jacTrial, fTrial)
			if ft := residual(fTrial); ft <= maxF*1.5+e.Opt.AbsTol || ls == 5 {
				copy(x, trial)
				copy(f, fTrial)
				for i := range jac {
					copy(jac[i], jacTrial[i])
				}
				maxF = ft
				accepted = true
				break
			}
			scale /= 2
		}
		if !accepted {
			return it, fmt.Errorf("spice: Newton line search stalled")
		}
		st.x = x
		if maxDx*scale < e.Opt.VTol && maxF < e.Opt.AbsTol*float64(dim)*100 {
			return it, nil
		}
	}
	return e.Opt.MaxNewton, fmt.Errorf("spice: Newton did not converge")
}

// DC computes the operating point at time t (waveform sources evaluated at
// t; capacitors open). It tries plain Newton from a zero start, then gmin
// stepping, then source stepping.
func (e *Engine) DC(t float64) (*Solution, error) {
	x := make([]float64, e.n+e.m)
	if _, err := e.newton(stampState{t: t, srcScal: 1}, x); err == nil {
		return &Solution{e: e, X: x}, nil
	}
	// gmin stepping: heavy shunt, then relax.
	for i := range x {
		x[i] = 0
	}
	ok := true
	for _, gs := range []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9, 1e-10, 1e-11, 0} {
		if _, err := e.newton(stampState{t: t, srcScal: 1, gshunt: gs}, x); err != nil {
			ok = false
			break
		}
	}
	if ok {
		return &Solution{e: e, X: x}, nil
	}
	// Source stepping: ramp all sources from zero.
	for i := range x {
		x[i] = 0
	}
	ok = true
	for _, sc := range []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 0.95, 1} {
		if _, err := e.newton(stampState{t: t, srcScal: sc}, x); err != nil {
			ok = false
			break
		}
	}
	if ok {
		return &Solution{e: e, X: x}, nil
	}
	// Pseudo-transient continuation: damp every node toward its previous
	// settled value with a decaying virtual conductance. This follows the
	// physical power-up trajectory and picks one basin of multistable
	// floating-node circuits. The decay is adaptive: a failed step backs
	// off to heavier damping.
	for i := range x {
		x[i] = 0
	}
	anchor := make([]float64, e.n)
	save := make([]float64, len(x))
	g := 1e-4
	const minG = 5e-14
	settled := false
	for attempts := 0; attempts < 120; attempts++ {
		copy(save, x)
		st := stampState{t: t, srcScal: 1, ptG: g, ptV: anchor}
		if _, err := e.newton(st, x); err != nil {
			copy(x, save)
			g *= 8
			if g > 1e-2 {
				return nil, fmt.Errorf("spice: DC pseudo-transient diverged: %w", err)
			}
			continue
		}
		copy(anchor, x[:e.n])
		if g <= minG {
			settled = true
			break
		}
		g /= 3
	}
	if !settled {
		return nil, fmt.Errorf("spice: DC pseudo-transient did not settle")
	}
	// Final polish without damping; a bistable floating node may defeat
	// it, in which case the minimally-damped solution (error ~ GMin-level
	// currents) is accepted.
	copy(save, x)
	if _, err := e.newton(stampState{t: t, srcScal: 1}, x); err != nil {
		copy(x, save)
	}
	return &Solution{e: e, X: x}, nil
}

// Waveforms holds sampled transient results.
type Waveforms struct {
	T []float64            // timepoints
	V map[string][]float64 // node name -> voltage samples
	I map[string][]float64 // source name -> branch current samples
}

// Tran integrates from 0 to stop with fixed step h, recording the given
// nodes and every source current. The initial condition is the DC
// operating point at t=0.
func (e *Engine) Tran(h, stop float64, record []string) (*Waveforms, error) {
	if h <= 0 || stop <= 0 {
		return nil, fmt.Errorf("spice: bad transient window h=%v stop=%v", h, stop)
	}
	op, err := e.DC(0)
	if err != nil {
		return nil, fmt.Errorf("spice: transient initial OP: %w", err)
	}
	x := append([]float64(nil), op.X...)
	capV := append([]float64(nil), x[:e.n]...)

	wf := &Waveforms{V: map[string][]float64{}, I: map[string][]float64{}}
	for _, r := range record {
		wf.V[r] = nil
	}
	for _, s := range e.Net.Sources {
		wf.I[s.Name] = nil
	}
	sample := func(t float64) {
		wf.T = append(wf.T, t)
		sol := Solution{e: e, X: x}
		for name := range wf.V {
			wf.V[name] = append(wf.V[name], sol.V(name))
		}
		for k, s := range e.Net.Sources {
			wf.I[s.Name] = append(wf.I[s.Name], x[e.n+k])
		}
	}
	sample(0)

	steps := int(math.Ceil(stop / h))
	for k := 1; k <= steps; k++ {
		t := float64(k) * h
		st := stampState{t: t, srcScal: 1, h: h, capV: capV}
		if _, err := e.newton(st, x); err != nil {
			// Retry the step with halved sub-steps before giving up.
			if err2 := e.substep(t-h, h, 8, x, capV); err2 != nil {
				return nil, fmt.Errorf("spice: transient failed at t=%.3g: %w", t, err)
			}
		}
		copy(capV, x[:e.n])
		sample(t)
	}
	return wf, nil
}

// substep integrates one troubled interval with finer steps.
func (e *Engine) substep(t0, h float64, parts int, x, capV []float64) error {
	hs := h / float64(parts)
	for i := 1; i <= parts; i++ {
		st := stampState{t: t0 + float64(i)*hs, srcScal: 1, h: hs, capV: capV}
		if _, err := e.newton(st, x); err != nil {
			return err
		}
		copy(capV, x[:e.n])
	}
	return nil
}
