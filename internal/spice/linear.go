// Package spice is a small analog circuit simulator — the reproduction's
// stand-in for HSPICE. It assembles modified nodal analysis (MNA) systems
// over the circuit package's netlists, solves the nonlinear DC operating
// point with damped Newton iterations (with gmin and source stepping
// fallbacks), and integrates transients with the backward-Euler companion
// model. Measurement helpers extract propagation delays and quiescent
// supply currents, which is everything the paper's Figure 5 and Table III
// experiments need.
package spice

import (
	"errors"
	"math"
)

// solveLinear solves A x = b in place using Gaussian elimination with
// partial pivoting. A is dense row-major; both A and b are clobbered.
// The solution is written into b. Suitable for the small (tens of nodes)
// systems of gate-level analog simulation.
func solveLinear(a [][]float64, b []float64) error {
	n := len(a)
	if n == 0 {
		return nil
	}
	for col := 0; col < n; col++ {
		// Pivot selection.
		piv := col
		max := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > max {
				max, piv = v, r
			}
		}
		if max < 1e-30 {
			return errors.New("spice: singular matrix")
		}
		if piv != col {
			a[piv], a[col] = a[col], a[piv]
			b[piv], b[col] = b[col], b[piv]
		}
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * b[c]
		}
		b[r] = s / a[r][r]
	}
	return nil
}

func newMatrix(n int) [][]float64 {
	backing := make([]float64, n*n)
	m := make([][]float64, n)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}

func zeroMatrix(m [][]float64) {
	for i := range m {
		row := m[i]
		for j := range row {
			row[j] = 0
		}
	}
}
