package spice

import (
	"errors"
	"math"
)

// CrossTime returns the first time after tMin at which the sampled signal
// crosses the threshold in the requested direction, with linear
// interpolation between samples.
func CrossTime(t, v []float64, threshold float64, rising bool, tMin float64) (float64, error) {
	if len(t) != len(v) || len(t) < 2 {
		return 0, errors.New("spice: bad waveform")
	}
	for i := 1; i < len(t); i++ {
		if t[i] < tMin {
			continue
		}
		a, b := v[i-1], v[i]
		var crossed bool
		if rising {
			crossed = a < threshold && b >= threshold
		} else {
			crossed = a > threshold && b <= threshold
		}
		if !crossed {
			continue
		}
		if b == a {
			return t[i], nil
		}
		f := (threshold - a) / (b - a)
		return t[i-1] + f*(t[i]-t[i-1]), nil
	}
	return 0, errors.New("spice: no crossing found")
}

// PropDelay measures the propagation delay from the input crossing vdd/2
// to the output crossing vdd/2, both after tMin. inRising selects the
// input edge; the output direction is outRising.
func PropDelay(wf *Waveforms, in, out string, vdd float64, inRising, outRising bool, tMin float64) (float64, error) {
	ti, err := CrossTime(wf.T, wf.V[in], vdd/2, inRising, tMin)
	if err != nil {
		return 0, err
	}
	to, err := CrossTime(wf.T, wf.V[out], vdd/2, outRising, ti)
	if err != nil {
		return 0, err
	}
	return to - ti, nil
}

// FinalV returns the last sample of a recorded node.
func FinalV(wf *Waveforms, node string) float64 {
	v := wf.V[node]
	if len(v) == 0 {
		return 0
	}
	return v[len(v)-1]
}

// SettledV returns the average of the last fraction of the waveform,
// a robust "final logic value" readout.
func SettledV(wf *Waveforms, node string, fraction float64) float64 {
	v := wf.V[node]
	if len(v) == 0 {
		return 0
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 0.1
	}
	start := int(float64(len(v)) * (1 - fraction))
	if start >= len(v) {
		start = len(v) - 1
	}
	sum := 0.0
	for _, x := range v[start:] {
		sum += x
	}
	return sum / float64(len(v)-start)
}

// SupplyCurrent returns the magnitude of the DC current delivered by the
// named source in the given solution (SPICE sign convention: a source
// delivering power shows a negative branch current).
func SupplyCurrent(sol *Solution, source string) float64 {
	return math.Abs(sol.I(source))
}
