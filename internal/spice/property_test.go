package spice

import (
	"math"
	"testing"
	"testing/quick"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
)

// TestSuperpositionProperty: in a purely resistive linear network, the
// response to two sources equals the sum of the responses to each source
// alone — the MNA assembly and solver must satisfy superposition.
func TestSuperpositionProperty(t *testing.T) {
	build := func(v1, v2 float64) *circuit.Netlist {
		n := &circuit.Netlist{}
		n.AddV("V1", "a", circuit.Ground, circuit.DC(v1))
		n.AddV("V2", "b", circuit.Ground, circuit.DC(v2))
		n.AddR("R1", "a", "m", 1000)
		n.AddR("R2", "b", "m", 2000)
		n.AddR("R3", "m", circuit.Ground, 3000)
		return n
	}
	solve := func(v1, v2 float64) float64 {
		e, err := NewEngine(build(v1, v2), Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.DC(0)
		if err != nil {
			t.Fatal(err)
		}
		return sol.V("m")
	}
	f := func(a, b int8) bool {
		v1 := float64(a) / 32
		v2 := float64(b) / 32
		both := solve(v1, v2)
		sum := solve(v1, 0) + solve(0, v2)
		return math.Abs(both-sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDividerScalingProperty: scaling the source scales every node
// voltage linearly in a resistive divider.
func TestDividerScalingProperty(t *testing.T) {
	f := func(a int8) bool {
		v := float64(a) / 16
		n := &circuit.Netlist{}
		n.AddV("V1", "in", circuit.Ground, circuit.DC(v))
		n.AddR("R1", "in", "m", 1500)
		n.AddR("R2", "m", circuit.Ground, 4500)
		e, err := NewEngine(n, Options{})
		if err != nil {
			return false
		}
		sol, err := e.DC(0)
		if err != nil {
			return false
		}
		want := v * 4500 / 6000
		return math.Abs(sol.V("m")-want) < 1e-9+1e-9*math.Abs(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestKCLProperty: at the DC operating point of a TIG inverter, the
// currents delivered by all sources balance the gmin losses — total
// source current into the circuit must be tiny compared to the on-current
// in quiescent states, and exactly conserved (sum of branch currents
// equals current into ground).
func TestKCLProperty(t *testing.T) {
	f := func(inHigh bool) bool {
		m := device.Default()
		n := buildINV(m, 2e-16)
		lvl := 0.0
		if inHigh {
			lvl = m.P.VDD
		}
		n.SourceByName("VIN").W = circuit.DC(lvl)
		e, err := NewEngine(n, Options{})
		if err != nil {
			return false
		}
		sol, err := e.DC(0)
		if err != nil {
			return false
		}
		// Quiescent: net delivered current stays far below the on-current.
		total := math.Abs(sol.I("VDD")) + math.Abs(sol.I("VIN"))
		return total < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// TestTransientChargeConservationProperty: an RC charged from a step and
// then disconnected (source held) keeps its final voltage within the
// leakage budget — the backward-Euler companion must not create charge.
func TestTransientChargeConservationProperty(t *testing.T) {
	f := func(sel uint8) bool {
		cval := []float64{0.5e-12, 1e-12, 2e-12}[int(sel)%3]
		n := &circuit.Netlist{}
		n.AddV("V1", "in", circuit.Ground, circuit.DC(1))
		n.AddR("R1", "in", "out", 1000)
		n.AddC("C1", "out", circuit.Ground, cval)
		e, err := NewEngine(n, Options{})
		if err != nil {
			return false
		}
		wf, err := e.Tran(10e-12, 20e-9, []string{"out"})
		if err != nil {
			return false
		}
		final := FinalV(wf, "out")
		return math.Abs(final-1) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
