package flatten

import (
	"math"
	"strings"
	"testing"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/spice"
)

// TestFlattenedNetlistRoundTrip writes the flattened full adder in the
// SPICE-like text format, parses it back, and checks that the re-parsed
// circuit produces the same DC solution — an integration test of the
// writer, the parser and the simulator on a non-trivial netlist.
func TestFlattenedNetlistRoundTrip(t *testing.T) {
	c := fullAdder(t)
	vdd := device.DefaultParams().VDD
	n, err := Build(c, Options{Inputs: map[string]circuit.Waveform{
		"a": circuit.DC(vdd), "b": circuit.DC(0), "cin": circuit.DC(vdd),
	}})
	if err != nil {
		t.Fatal(err)
	}

	text := n.String()
	if !strings.Contains(text, ".end") {
		t.Fatal("netlist text incomplete")
	}
	var p circuit.Parser
	back, err := p.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	if len(back.Transistors) != len(n.Transistors) ||
		len(back.Capacitors) != len(n.Capacitors) ||
		len(back.Sources) != len(n.Sources) {
		t.Fatalf("element counts differ after round trip")
	}

	solve := func(net *circuit.Netlist) (sum, cout float64) {
		e, err := spice.NewEngine(net, spice.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.DC(0)
		if err != nil {
			t.Fatal(err)
		}
		return sol.V("n_sum"), sol.V("n_cout")
	}
	s1, c1 := solve(n)
	s2, c2 := solve(back)
	if math.Abs(s1-s2) > 1e-6 || math.Abs(c1-c2) > 1e-6 {
		t.Errorf("DC solutions differ after round trip: sum %.6g vs %.6g, cout %.6g vs %.6g", s1, s2, c1, c2)
	}
	// a=1, b=0, cin=1: sum=0, cout=1.
	if s1 > 0.45*vdd {
		t.Errorf("sum = %.3f V, want logic 0", s1)
	}
	if c1 < 0.55*vdd {
		t.Errorf("cout = %.3f V, want logic 1", c1)
	}
}
