// Package flatten lowers gate-level circuits to transistor-level analog
// netlists: every gate instance expands to its CP transistor topology,
// inter-gate nets share nodes, and the complemented literals required by
// dynamic-polarity gates are produced by real CP inverters inserted once
// per complemented net.
package flatten

import (
	"fmt"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// Options configures Build.
type Options struct {
	// Model is the base device model (device.Default() when nil).
	Model *device.Model
	// Inputs drives each primary input by name; missing inputs get DC 0.
	Inputs map[string]circuit.Waveform
	// Defects injects device defects, keyed by "<gateName>.<transistor>".
	Defects map[string]device.Defects
	// LoadPerOutput is the capacitance added at each primary output
	// (0 selects an FO4-style default).
	LoadPerOutput float64
}

// Build flattens a gate-level circuit into one transistor-
// level netlist: every gate instance becomes its transistor topology,
// inter-gate nets become shared nodes, and the complemented literals
// required by dynamic-polarity gates are produced by real CP inverters
// inserted on demand (one per complemented net) — the full-circuit analog
// view of the paper's simulation flow.
func Build(c *logic.Circuit, opt Options) (*circuit.Netlist, error) {
	model := opt.Model
	if model == nil {
		model = device.Default()
	}
	vdd := model.P.VDD

	n := &circuit.Netlist{Title: c.Name}
	n.AddV("VDD", gates.NodeVdd, circuit.Ground, circuit.DC(vdd))
	for _, pi := range c.Inputs {
		w, ok := opt.Inputs[pi]
		if !ok || w == nil {
			w = circuit.DC(0)
		}
		n.AddV("VIN_"+pi, netNode(pi), circuit.Ground, w)
	}

	// Discover which nets need complements (any DP gate fanin used as a
	// complemented literal).
	needComp := map[string]bool{}
	for _, g := range c.Gates {
		spec := gates.Get(g.Kind)
		for _, tr := range spec.Transistors {
			for _, s := range []gates.Sig{tr.D, tr.CG, tr.PGS, tr.PGD, tr.S} {
				if s.K == gates.SigInN {
					needComp[g.Fanin[s.In]] = true
				}
			}
		}
	}

	// Complement generators: a CP inverter per complemented net.
	inv := gates.Get(gates.INV)
	for net := range needComp {
		prefix := "cmp_" + net
		for _, tr := range inv.Transistors {
			m := model
			if d, ok := opt.Defects[prefix+"."+tr.Name]; ok && d.Defective() {
				m = model.WithDefects(d)
			}
			nodes, err := instanceNodes(tr, prefix, []string{net}, compNode(net), nil)
			if err != nil {
				return nil, err
			}
			n.AddM("M"+prefix+"_"+tr.Name, nodes[0], nodes[1], nodes[2], nodes[3], nodes[4], m)
		}
		n.AddC("C"+prefix, compNode(net), circuit.Ground, 2*model.C.CGate)
	}

	// Gate instances.
	for _, g := range c.Gates {
		spec := gates.Get(g.Kind)
		for _, tr := range spec.Transistors {
			m := model
			if d, ok := opt.Defects[g.Name+"."+tr.Name]; ok && d.Defective() {
				m = model.WithDefects(d)
			}
			nodes, err := instanceNodes(tr, g.Name, g.Fanin, netNode(g.Output), nil)
			if err != nil {
				return nil, err
			}
			n.AddM("M"+g.Name+"_"+tr.Name, nodes[0], nodes[1], nodes[2], nodes[3], nodes[4], m)
		}
		// Wire load at the gate output.
		n.AddC("Cw_"+g.Name, netNode(g.Output), circuit.Ground, model.C.CPar)
	}

	load := opt.LoadPerOutput
	if load <= 0 {
		load = 4 * 3 * model.C.CGate
	}
	for _, po := range c.Outputs {
		n.AddC("CL_"+po, netNode(po), circuit.Ground, load)
	}
	return n, nil
}

// netNode names the analog node of a logic net.
func netNode(net string) string { return "n_" + net }

// compNode names the complemented version of a net.
func compNode(net string) string { return "nb_" + net }

// instanceNodes resolves the five terminal nodes of one transistor spec
// inside an instance: fanin nets map through the instance's fanin list,
// the output signal maps to outNode, internal nodes get the instance
// prefix.
func instanceNodes(tr gates.TransistorSpec, prefix string, fanin []string, outNode string, _ map[string]string) ([5]string, error) {
	resolve := func(s gates.Sig) (string, error) {
		switch s.K {
		case gates.SigGnd:
			return circuit.Ground, nil
		case gates.SigVdd:
			return gates.NodeVdd, nil
		case gates.SigIn:
			if s.In >= len(fanin) {
				return "", fmt.Errorf("gates: fanin index %d out of range for %s", s.In, prefix)
			}
			return netNode(fanin[s.In]), nil
		case gates.SigInN:
			if s.In >= len(fanin) {
				return "", fmt.Errorf("gates: fanin index %d out of range for %s", s.In, prefix)
			}
			return compNode(fanin[s.In]), nil
		case gates.SigOut:
			return outNode, nil
		case gates.SigInternal:
			return prefix + "__" + s.Node, nil
		}
		return "", fmt.Errorf("gates: unresolvable signal in %s", prefix)
	}
	var out [5]string
	var err error
	for i, s := range []gates.Sig{tr.D, tr.CG, tr.PGS, tr.PGD, tr.S} {
		if out[i], err = resolve(s); err != nil {
			return out, err
		}
	}
	return out, nil
}
