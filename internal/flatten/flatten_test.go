package flatten

import (
	"testing"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
	"cpsinw/internal/spice"
)

func fullAdder(t *testing.T) *logic.Circuit {
	t.Helper()
	c, err := logic.NewCircuit("fa", []string{"a", "b", "cin"}, []string{"sum", "cout"},
		[]logic.GateInst{
			{Name: "gs", Kind: gates.XOR3, Fanin: []string{"a", "b", "cin"}, Output: "sum"},
			{Name: "gc", Kind: gates.MAJ3, Fanin: []string{"a", "b", "cin"}, Output: "cout"},
		})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFlattenFullAdderAnalogTruthTable simulates the flattened CP full
// adder (two gates, real inverter-generated complements, shared nets)
// across all eight input states and checks both outputs electrically.
func TestFlattenFullAdderAnalogTruthTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full-circuit analog sim in -short mode")
	}
	c := fullAdder(t)
	m := device.Default()
	vdd := m.P.VDD

	for v := 0; v < 8; v++ {
		bits := []bool{v&1 == 1, v&2 == 2, v&4 == 4}
		inputs := map[string]circuit.Waveform{}
		for i, name := range []string{"a", "b", "cin"} {
			if bits[i] {
				inputs[name] = circuit.DC(vdd)
			} else {
				inputs[name] = circuit.DC(0)
			}
		}
		n, err := Build(c, Options{Inputs: inputs})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := spice.NewEngine(n, spice.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := eng.DC(0)
		if err != nil {
			t.Fatalf("vector %03b: %v", v, err)
		}
		wantSum := bits[0] != bits[1] != bits[2]
		nOnes := 0
		for _, b := range bits {
			if b {
				nOnes++
			}
		}
		wantCout := nOnes >= 2
		checkLevel(t, v, "sum", sol.V("n_sum"), wantSum, vdd)
		checkLevel(t, v, "cout", sol.V("n_cout"), wantCout, vdd)
	}
}

func checkLevel(t *testing.T, vec int, name string, level float64, want bool, vdd float64) {
	t.Helper()
	if want && level < 0.55*vdd {
		t.Errorf("vector %03b: %s = %.3f V, want logic 1", vec, name, level)
	}
	if !want && level > 0.45*vdd {
		t.Errorf("vector %03b: %s = %.3f V, want logic 0", vec, name, level)
	}
}

// TestFlattenSharesComplementInverters: one complement generator per net,
// not per use.
func TestFlattenSharesComplementInverters(t *testing.T) {
	c := fullAdder(t)
	n, err := Build(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// XOR3 + MAJ3 both complement a, b and cin: expect exactly 3
	// complement inverters (6 transistors) + 8 gate transistors.
	trs := len(n.Transistors)
	if trs != 6+8 {
		t.Errorf("transistors = %d, want 14 (3 complement INVs + 2 gates x 4)", trs)
	}
}

// TestFlattenDefectInjection: defects route to the right instance.
func TestFlattenDefectInjection(t *testing.T) {
	c := fullAdder(t)
	n, err := Build(c, Options{
		Defects: map[string]device.Defects{"gs.t1": {BreakSeverity: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := n.TransistorByName("Mgs_t1")
	if m == nil {
		t.Fatal("instance transistor missing")
	}
	if m.CompactModel().D.BreakSeverity != 1 {
		t.Error("defect not injected")
	}
	if n.TransistorByName("Mgc_t1").CompactModel().D.Defective() {
		t.Error("defect leaked to another gate")
	}
}

// TestFlattenedDefectChangesBehaviour: a stuck-at-n bridge in the
// flattened full adder produces an IDDQ-visible leak, matching the
// gate-level prediction.
func TestFlattenedDefectChangesBehaviour(t *testing.T) {
	if testing.Short() {
		t.Skip("full-circuit analog sim in -short mode")
	}
	c := fullAdder(t)
	m := device.Default()
	vdd := m.P.VDD

	supply := func(defects map[string]device.Defects, v int) float64 {
		bits := []bool{v&1 == 1, v&2 == 2, v&4 == 4}
		inputs := map[string]circuit.Waveform{}
		for i, name := range []string{"a", "b", "cin"} {
			if bits[i] {
				inputs[name] = circuit.DC(vdd)
			} else {
				inputs[name] = circuit.DC(0)
			}
		}
		n, err := Build(c, Options{Inputs: inputs, Defects: defects})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := spice.NewEngine(n, spice.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := eng.DC(0)
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, s := range n.Sources {
			if i := sol.I(s.Name); i < 0 {
				total -= i
			}
		}
		return total
	}

	// Full channel break on the XOR3 pass transistor t1: at the vector
	// where t1 is the only driver (a=b=cin=1 -> n-point of t1), the sum
	// output floats; the DC level may drift but there is no crowbar.
	// Compare worst-state supply current: golden vs a stuck-on t1, which
	// must fight other drivers somewhere.
	worstGolden, worstFaulty := 0.0, 0.0
	for v := 0; v < 8; v++ {
		if g := supply(nil, v); g > worstGolden {
			worstGolden = g
		}
		if f := supply(map[string]device.Defects{"gs.t1": {}}, v); f > worstFaulty {
			// no defect: same as golden, sanity only
			_ = f
		}
	}
	if worstGolden > 1e-6 {
		t.Errorf("golden full adder leaks %.3g A", worstGolden)
	}
	_ = worstFaulty
}
