// Package resultstore is the campaign service's durable,
// content-addressed result store: finished campaign reports, per-shard
// sub-job results and pending-campaign markers persist as compressed
// JSON artifacts under their content address, so a restarted service
// answers repeat campaigns without re-simulation and resumes interrupted
// ones from the shards that already completed.
//
// Layout (one directory per artifact kind under the store root):
//
//	<dir>/reports/<key>.json.gz  merged campaign reports, keyed by the
//	                             campaign's canonical content address
//	<dir>/shards/<key>.json.gz   sub-job results, keyed by the shard's
//	                             derived content address (see internal/shard)
//	<dir>/pending/<key>.json.gz  normalized requests of accepted-but-
//	                             unfinished campaigns (resumable state)
//
// Writes are atomic (tmp + rename) so a crashed writer never leaves a
// half-written artifact, and gzip's CRC catches torn or corrupted files
// at read time. Keys are exactly 64 lowercase hex digits (a SHA-256),
// which also guards the store against path traversal.
package resultstore

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Kind names an artifact namespace inside the store.
type Kind string

const (
	// KindReport holds merged campaign reports keyed by campaign key.
	KindReport Kind = "reports"
	// KindShard holds sub-job results keyed by shard sub-key.
	KindShard Kind = "shards"
	// KindPending holds normalized requests of campaigns that were
	// accepted but have not completed (the resumable state).
	KindPending Kind = "pending"
)

// kinds is every valid namespace, for Open to pre-create.
var kinds = []Kind{KindReport, KindShard, KindPending}

// Ext is the artifact file suffix.
const Ext = ".json.gz"

// Store is a content-addressed artifact directory tree. All methods are
// safe for concurrent use; concurrency control is the filesystem's
// (atomic rename), so multiple processes may share one store.
type Store struct {
	dir string
}

// Open creates the store layout if needed and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resultstore: empty store directory")
	}
	for _, k := range kinds {
		if err := os.MkdirAll(filepath.Join(dir, string(k)), 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir}, nil
}

// Dir reports the store root.
func (s *Store) Dir() string { return s.dir }

// ValidKey reports whether key is a well-formed artifact key: exactly
// the 64 lowercase hex digits of a SHA-256.
func ValidKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(kind Kind, key string) string {
	return filepath.Join(s.dir, string(kind), key+Ext)
}

// Put persists v as compressed JSON under (kind, key), atomically, and
// returns the artifact's on-disk size.
func (s *Store) Put(kind Kind, key string, v interface{}) (int64, error) {
	if !ValidKey(key) {
		return 0, fmt.Errorf("resultstore: invalid artifact key %q", key)
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, string(kind)), "put-*.tmp")
	if err != nil {
		return 0, err
	}
	discard := func(err error) (int64, error) {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	zw := gzip.NewWriter(tmp)
	if err := json.NewEncoder(zw).Encode(v); err != nil {
		return discard(err)
	}
	if err := zw.Close(); err != nil {
		return discard(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	fi, err := os.Stat(tmp.Name())
	if err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), s.path(kind, key)); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return fi.Size(), nil
}

// Get loads the artifact under (kind, key) into out. A missing artifact
// surfaces as a wrapped os.ErrNotExist; a torn or corrupted artifact as
// a decode error.
func (s *Store) Get(kind Kind, key string, out interface{}) error {
	if !ValidKey(key) {
		return fmt.Errorf("resultstore: invalid artifact key %q", key)
	}
	f, err := os.Open(s.path(kind, key))
	if err != nil {
		return err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("resultstore: artifact %s/%s: %w", kind, key, err)
	}
	defer zr.Close()
	if err := json.NewDecoder(zr).Decode(out); err != nil {
		return fmt.Errorf("resultstore: artifact %s/%s: %w", kind, key, err)
	}
	return nil
}

// Has reports whether an artifact exists under (kind, key), without
// reading it.
func (s *Store) Has(kind Kind, key string) bool {
	if !ValidKey(key) {
		return false
	}
	_, err := os.Stat(s.path(kind, key))
	return err == nil
}

// Delete removes the artifact under (kind, key); deleting a missing
// artifact is not an error.
func (s *Store) Delete(kind Kind, key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("resultstore: invalid artifact key %q", key)
	}
	err := os.Remove(s.path(kind, key))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Keys lists the artifact keys present under kind, sorted.
func (s *Store) Keys(kind Kind) ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.dir, string(kind)))
	if err != nil {
		return nil, err
	}
	keys := []string{}
	for _, e := range ents {
		name := e.Name()
		if len(name) == 64+len(Ext) && name[64:] == Ext && ValidKey(name[:64]) {
			keys = append(keys, name[:64])
		}
	}
	sort.Strings(keys)
	return keys, nil
}
