package resultstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const keyA = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
const keyB = "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"

type payload struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := payload{Name: "mult3", Count: 42}
	size, err := s.Put(KindReport, keyA, want)
	if err != nil {
		t.Fatal(err)
	}
	if size <= 0 {
		t.Fatalf("size = %d, want > 0", size)
	}
	var got payload
	if err := s.Get(KindReport, keyA, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestMissingArtifactIsNotExist(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Get(KindShard, keyA, &got); !os.IsNotExist(err) {
		t.Fatalf("Get(missing) = %v, want not-exist", err)
	}
	if s.Has(KindShard, keyA) {
		t.Fatal("Has(missing) = true")
	}
}

func TestKindsAreIsolated(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(KindReport, keyA, payload{Name: "r"}); err != nil {
		t.Fatal(err)
	}
	if s.Has(KindShard, keyA) || s.Has(KindPending, keyA) {
		t.Fatal("artifact leaked across kinds")
	}
	keys, err := s.Keys(KindReport)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != keyA {
		t.Fatalf("Keys(reports) = %v", keys)
	}
}

func TestDeleteIsIdempotent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(KindPending, keyB, payload{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(KindPending, keyB); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(KindPending, keyB); err != nil {
		t.Fatal(err)
	}
	if s.Has(KindPending, keyB) {
		t.Fatal("artifact survived delete")
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", strings.Repeat("g", 64), "../../../../etc/passwd", strings.Repeat("A", 64)} {
		if _, err := s.Put(KindReport, bad, payload{}); err == nil {
			t.Errorf("Put(%q) accepted an invalid key", bad)
		}
		if err := s.Get(KindReport, bad, &payload{}); err == nil {
			t.Errorf("Get(%q) accepted an invalid key", bad)
		}
		if s.Has(KindReport, bad) {
			t.Errorf("Has(%q) = true", bad)
		}
	}
}

func TestCorruptArtifactSurfacesError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "reports", keyA+Ext), []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s.Get(KindReport, keyA, &got); err == nil || os.IsNotExist(err) {
		t.Fatalf("Get(corrupt) = %v, want decode error", err)
	}
}

func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(KindReport, keyA, payload{Name: "persisted", Count: 7}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	if err := s2.Get(KindReport, keyA, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "persisted" || got.Count != 7 {
		t.Fatalf("got %+v after reopen", got)
	}
}

func TestKeysSkipsStrayFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(KindShard, keyB, payload{}); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "shards", "stray.txt"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, "shards", "put-123.tmp"), []byte("x"), 0o644)
	keys, err := s.Keys(KindShard)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != keyB {
		t.Fatalf("Keys = %v, want [%s]", keys, keyB)
	}
}
