package shard

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"sort"

	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
)

// Det is one serializable detection record. The fault it belongs to is
// implied by its position: class universes are enumerated
// deterministically (core.Universe / core.NeighborBridges), so a
// shard's records line up with its Range without carrying fault names.
type Det struct {
	Method  string `json:"m,omitempty"`
	Pattern int    `json:"p"`
	// Detected carries the bridge engines' explicit flag; for
	// transistor/stuck-at records it is implied by Method.
	Detected bool `json:"d,omitempty"`
}

// ClassResult is one fault class's slice of a shard result: the
// detection records for the shard's Range and, when the shard captured
// signatures, the per-fault detection bitsets (base64 rows, one per
// fault, little-endian 64-bit words, (patterns+63)/64 words per row).
type ClassResult struct {
	Range Range    `json:"range"`
	Dets  []Det    `json:"dets"`
	Out   []string `json:"out,omitempty"`
	Leak  []string `json:"leak,omitempty"`
}

// Result is one completed sub-job, the unit persisted in
// internal/resultstore under the sub-job key. TransistorV and
// TransistorIQ are the voltage-only and +IDDQ sweeps over the same
// transistor range (the campaign runs both when IDDQ observation is
// on, mirroring the unsharded stage order).
type Result struct {
	Key         string `json:"key"`
	CampaignKey string `json:"campaign_key"`
	Index       int    `json:"index"`
	Total       int    `json:"total"`

	StuckAt      *ClassResult `json:"stuck_at,omitempty"`
	TransistorV  *ClassResult `json:"transistor,omitempty"`
	TransistorIQ *ClassResult `json:"transistor_iddq,omitempty"`
	Bridges      *ClassResult `json:"bridges,omitempty"`

	// GateEvals is the engine-native work the shard performed, for
	// progress accounting; cache-served shards report 0.
	GateEvals uint64 `json:"gate_evals,omitempty"`
}

// Matches validates a loaded result against the sub-job it should
// answer, so a corrupted or mis-keyed artifact fails loudly instead of
// merging wrong rows.
func (r *Result) Matches(j SubJob) error {
	if r.Key != j.Key || r.Index != j.Index || r.Total != j.Total {
		return fmt.Errorf("shard: result (%s %d/%d) does not answer sub-job (%s %d/%d)",
			r.Key, r.Index, r.Total, j.Key, j.Index, j.Total)
	}
	check := func(name string, cr *ClassResult, want Range, capture bool) error {
		if cr == nil {
			return nil
		}
		if cr.Range != want {
			return fmt.Errorf("shard: result %d/%d %s range %v, sub-job wants %v", r.Index, r.Total, name, cr.Range, want)
		}
		if len(cr.Dets) != want.Len() {
			return fmt.Errorf("shard: result %d/%d %s has %d records for %d faults", r.Index, r.Total, name, len(cr.Dets), want.Len())
		}
		if capture && len(cr.Out) != want.Len() {
			return fmt.Errorf("shard: result %d/%d %s missing signature rows (capture expected)", r.Index, r.Total, name)
		}
		return nil
	}
	if err := check("stuck_at", r.StuckAt, j.StuckAt, j.Capture); err != nil {
		return err
	}
	if err := check("transistor", r.TransistorV, j.Transistor, false); err != nil {
		return err
	}
	if err := check("transistor_iddq", r.TransistorIQ, j.Transistor, false); err != nil {
		return err
	}
	return check("bridges", r.Bridges, j.Bridges, false)
}

// EncodeDetections converts engine detections to wire records.
func EncodeDetections(ds []faultsim.Detection) []Det {
	out := make([]Det, len(ds))
	for i, d := range ds {
		out[i] = Det{Method: string(d.Method), Pattern: d.Pattern}
	}
	return out
}

// EncodeBridgeDetections converts bridge detections to wire records.
func EncodeBridgeDetections(ds []faultsim.BridgeDetection) []Det {
	out := make([]Det, len(ds))
	for i, d := range ds {
		out[i] = Det{Method: string(d.Method), Pattern: d.Pattern, Detected: d.Detected}
	}
	return out
}

// classParts collects, validates and orders the per-shard slices of one
// class: ranges must tile [0, n) exactly.
func classParts(n int, parts []*ClassResult) ([]*ClassResult, error) {
	got := make([]*ClassResult, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			got = append(got, p)
		}
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Range.Start < got[j].Range.Start })
	at := 0
	for _, p := range got {
		if p.Range.Start != at {
			return nil, fmt.Errorf("shard: merge gap at fault %d (next range starts at %d)", at, p.Range.Start)
		}
		if len(p.Dets) != p.Range.Len() {
			return nil, fmt.Errorf("shard: range %v carries %d records", p.Range, len(p.Dets))
		}
		at = p.Range.End
	}
	if at != n {
		return nil, fmt.Errorf("shard: merged ranges cover %d of %d faults", at, n)
	}
	return got, nil
}

// MergeDetections reassembles the full detection list of one class from
// its shard slices, in universe order — bit-identical to the unsharded
// sweep because each fault's outcome is independent of its neighbours.
func MergeDetections(universe []core.Fault, parts []*ClassResult) ([]faultsim.Detection, error) {
	got, err := classParts(len(universe), parts)
	if err != nil {
		return nil, err
	}
	out := make([]faultsim.Detection, len(universe))
	for _, p := range got {
		for k, d := range p.Dets {
			i := p.Range.Start + k
			out[i] = faultsim.Detection{
				Fault:   universe[i],
				Method:  faultsim.DetectMethod(d.Method),
				Pattern: d.Pattern,
			}
		}
	}
	return out, nil
}

// MergeBridgeDetections is MergeDetections for the bridge universe.
func MergeBridgeDetections(universe []core.Bridge, parts []*ClassResult) ([]faultsim.BridgeDetection, error) {
	got, err := classParts(len(universe), parts)
	if err != nil {
		return nil, err
	}
	out := make([]faultsim.BridgeDetection, len(universe))
	for _, p := range got {
		for k, d := range p.Dets {
			i := p.Range.Start + k
			out[i] = faultsim.BridgeDetection{
				Bridge:   universe[i],
				Method:   faultsim.DetectMethod(d.Method),
				Pattern:  d.Pattern,
				Detected: d.Detected,
			}
		}
	}
	return out, nil
}

// EncodeSigRows serializes a capture's per-fault bitset rows: one
// base64 string per fault, little-endian 64-bit words.
func EncodeSigRows(c *faultsim.SignatureCapture, leak bool) []string {
	out := make([]string, c.NFaults)
	buf := make([]byte, c.Words()*8)
	for i := range out {
		row := c.Out(i)
		if leak {
			row = c.Leak(i)
		}
		for w, v := range row {
			binary.LittleEndian.PutUint64(buf[w*8:], v)
		}
		out[i] = base64.StdEncoding.EncodeToString(buf)
	}
	return out
}

// MergeSignatures reassembles one class's full signature capture from
// shard rows: the output plane always, the leak plane when withLeak
// (IDDQ-observed transistor sweeps). Parts without rows (artifacts
// written by an uncaptured run) are an error: captured and uncaptured
// shards are keyed apart, so a mismatch means a corrupted store.
func MergeSignatures(nFaults, nPatterns int, parts []*ClassResult, withLeak bool) (*faultsim.SignatureCapture, error) {
	got, err := classParts(nFaults, parts)
	if err != nil {
		return nil, err
	}
	cap := faultsim.NewSignatureCapture(nFaults, nPatterns)
	fill := func(p *ClassResult, rows []string, plane func(int) []uint64, name string) error {
		if len(rows) != p.Range.Len() {
			return fmt.Errorf("shard: range %v carries %d %s signature rows, want %d",
				p.Range, len(rows), name, p.Range.Len())
		}
		for k, s := range rows {
			if err := decodeSigRow(s, plane(p.Range.Start+k)); err != nil {
				return fmt.Errorf("shard: fault %d: %w", p.Range.Start+k, err)
			}
		}
		return nil
	}
	for _, p := range got {
		if err := fill(p, p.Out, cap.Out, "out"); err != nil {
			return nil, err
		}
		if withLeak {
			if err := fill(p, p.Leak, cap.Leak, "leak"); err != nil {
				return nil, err
			}
		}
	}
	return cap, nil
}

func decodeSigRow(s string, dst []uint64) error {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return err
	}
	if len(raw) != len(dst)*8 {
		return fmt.Errorf("signature row is %d bytes, want %d", len(raw), len(dst)*8)
	}
	for w := range dst {
		dst[w] = binary.LittleEndian.Uint64(raw[w*8:])
	}
	return nil
}
