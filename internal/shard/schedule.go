package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrDraining is returned by Scheduler.Run when the drain signal fired
// before every sub-job started: the in-flight shards were allowed to
// finish (their results persist for partial reuse) and the unstarted
// remainder was abandoned. The campaign is resumable, not failed.
var ErrDraining = errors.New("shard: draining, unstarted sub-jobs abandoned")

// QuarantineError reports the sub-jobs that exhausted their retry
// budget. The scheduler keeps running the healthy shards to completion
// first, so everything that could be cached was cached.
type QuarantineError struct {
	// Failures maps shard index to the last attempt's error.
	Failures map[int]error
}

func (e *QuarantineError) Error() string {
	idx := make([]int, 0, len(e.Failures))
	for i := range e.Failures {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	parts := make([]string, 0, len(idx))
	for _, i := range idx {
		parts = append(parts, fmt.Sprintf("shard %d: %v", i, e.Failures[i]))
	}
	return fmt.Sprintf("shard: %d sub-job(s) quarantined: %s", len(idx), strings.Join(parts, "; "))
}

// Events receives scheduler lifecycle callbacks; every field is
// optional. Callbacks run on scheduler goroutines and must not block.
type Events struct {
	// Scheduled fires once per sub-job dispatched for execution (cache
	// hits resolved by the attempt function itself still count: the
	// scheduler cannot tell, and the distinction is the caller's).
	Scheduled func(SubJob)
	// Retried fires before each re-attempt with the attempt number
	// (2 for the first retry) and the error that caused it.
	Retried func(j SubJob, attempt int, err error)
	// Quarantined fires when a sub-job exhausts its retries.
	Quarantined func(j SubJob, err error)
	// Done fires when a sub-job completes successfully.
	Done func(SubJob)
}

// Scheduler runs a plan's sub-jobs across a bounded worker pool with
// per-attempt timeout, bounded retry and failure quarantine.
type Scheduler struct {
	// Workers bounds concurrently running sub-jobs (default: all).
	Workers int
	// Retries is the number of re-attempts after a failed first attempt
	// (default 0: fail fast into quarantine).
	Retries int
	// Timeout bounds each attempt (0: only the parent context bounds it).
	Timeout time.Duration
	// Draining, when closed, stops new sub-jobs from starting; in-flight
	// attempts run to completion and Run returns ErrDraining.
	Draining <-chan struct{}
}

// draining reports whether the drain signal has fired.
func (s *Scheduler) draining() bool {
	select {
	case <-s.Draining:
		return true
	default:
		return false
	}
}

// Run executes every sub-job via attempt. It returns nil when all
// succeed; ctx.Err() when the parent context ends; ErrDraining when the
// drain signal abandoned unstarted sub-jobs; a *QuarantineError when
// some sub-jobs failed past their retry budget (after the healthy ones
// finished). Attempt must be safe for concurrent calls.
func (s *Scheduler) Run(ctx context.Context, jobs []SubJob, attempt func(context.Context, SubJob) error, ev Events) error {
	workers := s.Workers
	if workers <= 0 || workers > len(jobs) {
		workers = len(jobs)
	}
	if workers == 0 {
		return nil
	}

	var (
		mu        sync.Mutex
		failures  = map[int]error{}
		abandoned bool
	)
	next := make(chan SubJob)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range next {
				err := s.runOne(ctx, j, attempt, ev)
				if err == nil {
					if ev.Done != nil {
						ev.Done(j)
					}
					continue
				}
				if ctx.Err() != nil {
					continue // cancellation is reported once, below
				}
				if ev.Quarantined != nil {
					ev.Quarantined(j, err)
				}
				mu.Lock()
				failures[j.Index] = err
				mu.Unlock()
			}
		}()
	}

feed:
	for _, j := range jobs {
		if ctx.Err() != nil {
			break
		}
		if s.Draining != nil && s.draining() {
			abandoned = true
			break feed
		}
		select {
		case next <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return err
	}
	if abandoned {
		return ErrDraining
	}
	if len(failures) > 0 {
		return &QuarantineError{Failures: failures}
	}
	return nil
}

// runOne drives one sub-job through its attempts.
func (s *Scheduler) runOne(ctx context.Context, j SubJob, attempt func(context.Context, SubJob) error, ev Events) error {
	if ev.Scheduled != nil {
		ev.Scheduled(j)
	}
	var err error
	for try := 1; try <= 1+s.Retries; try++ {
		if try > 1 && ev.Retried != nil {
			ev.Retried(j, try, err)
		}
		err = s.attemptOnce(ctx, j, attempt)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			// The parent ended: the failure is cancellation, not the
			// shard's; never burn retries on it.
			return ctx.Err()
		}
	}
	return err
}

func (s *Scheduler) attemptOnce(ctx context.Context, j SubJob, attempt func(context.Context, SubJob) error) error {
	if s.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.Timeout)
		defer cancel()
	}
	return attempt(ctx, j)
}
