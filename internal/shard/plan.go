// Package shard turns one fault campaign into K independently
// schedulable, independently cacheable sub-jobs. The paper's campaigns
// are embarrassingly parallel over the fault list — every fault's
// detection outcome is independent of every other fault's — so a
// campaign splits into contiguous fault-range sub-jobs whose merged
// results are bit-identical to the unsharded run (the service's
// differential suite pins this against the packed single-shot engine).
//
// The three pieces:
//
//   - Plan / Partition / SubKey: a deterministic fault-list partitioner.
//     Sub-job keys are content addresses derived from the campaign's
//     canonical key plus the partition coordinates, so the same shard of
//     the same campaign hashes to the same key on any machine, forever —
//     the unit of caching in internal/resultstore.
//
//   - Scheduler: runs sub-jobs across a bounded worker pool with
//     per-attempt timeout, bounded retry and failure quarantine (a shard
//     that exhausts its retries is set aside; the remaining shards still
//     run to completion so their results persist for partial reuse).
//
//   - Result / Merge*: a serializable per-shard result (detection
//     records and optional signature rows) and the deterministic
//     merge-on-complete that reassembles full detection lists and
//     signature captures in fault order.
package shard

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// Range is a half-open fault-index interval [Start, End) into one fault
// class's deterministic universe order.
type Range struct {
	Start int `json:"start"`
	End   int `json:"end"`
}

// Len is the number of faults in the range.
func (r Range) Len() int { return r.End - r.Start }

// Partition splits [0, n) into k contiguous ranges whose lengths differ
// by at most one, the leftover spread over the leading ranges. It is
// pure: the same (n, k) always yields the same ranges, which is what
// makes sub-job keys stable. k <= 0 is treated as 1; empty ranges are
// returned when k > n so every shard index exists.
func Partition(n, k int) []Range {
	if k <= 0 {
		k = 1
	}
	if n < 0 {
		n = 0
	}
	out := make([]Range, k)
	base, extra := n/k, n%k
	start := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Start: start, End: start + size}
		start += size
	}
	return out
}

// SubKey derives the content address of one sub-job from the campaign's
// canonical key and the partition coordinates. The capture flag is part
// of the address because a signature-capturing shard produces a
// different (richer) artifact than an uncaptured one; keying them apart
// keeps both cacheable without confusion.
func SubKey(campaignKey string, index, total int, capture bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "shard\x00%s\x00%d/%d\x00capture=%t", campaignKey, index, total, capture)
	return hex.EncodeToString(h.Sum(nil))
}

// SubJob is one independently schedulable unit: the shard's content
// address plus its fault range in each class's universe. Classes the
// campaign does not simulate carry empty ranges.
type SubJob struct {
	Key     string `json:"key"`
	Index   int    `json:"index"`
	Total   int    `json:"total"`
	Capture bool   `json:"capture"`

	StuckAt    Range `json:"stuck_at"`
	Transistor Range `json:"transistor"`
	Bridges    Range `json:"bridges"`
}

// Plan is the deterministic decomposition of one campaign into Total
// sub-jobs.
type Plan struct {
	CampaignKey string
	Total       int
	Capture     bool

	// Class universe sizes the plan partitioned (0 for classes the
	// campaign does not simulate).
	StuckAt    int
	Transistor int
	Bridges    int

	Jobs []SubJob
}

// NewPlan partitions a campaign with the given per-class fault universe
// sizes into k sub-jobs. The same inputs always produce the same plan,
// including every sub-job key. k is clamped to [1, MaxShards] and to
// the largest class size (sharding finer than one fault per shard only
// manufactures empty work).
func NewPlan(campaignKey string, k, nStuckAt, nTransistor, nBridges int, capture bool) *Plan {
	k = ClampShards(k, nStuckAt, nTransistor, nBridges)
	p := &Plan{
		CampaignKey: campaignKey,
		Total:       k,
		Capture:     capture,
		StuckAt:     nStuckAt,
		Transistor:  nTransistor,
		Bridges:     nBridges,
	}
	sa := Partition(nStuckAt, k)
	tr := Partition(nTransistor, k)
	br := Partition(nBridges, k)
	p.Jobs = make([]SubJob, k)
	for i := range p.Jobs {
		p.Jobs[i] = SubJob{
			Key:        SubKey(campaignKey, i, k, capture),
			Index:      i,
			Total:      k,
			Capture:    capture,
			StuckAt:    sa[i],
			Transistor: tr[i],
			Bridges:    br[i],
		}
	}
	return p
}

// MaxShards bounds a single campaign's decomposition; past this the
// per-shard scheduling and merge overhead dominates any spread.
const MaxShards = 64

// ClampShards normalizes a requested shard count against the class
// sizes: at least 1, at most MaxShards, and no finer than the largest
// class (so no shard is empty in every class).
func ClampShards(k int, classSizes ...int) int {
	max := 1
	for _, n := range classSizes {
		if n > max {
			max = n
		}
	}
	if k < 1 {
		k = 1
	}
	if k > max {
		k = max
	}
	if k > MaxShards {
		k = MaxShards
	}
	return k
}

// AutoShards is the default shard count for a campaign that does not
// pin one: one shard per autoShardWork units of gates x faults, bounded
// by ClampShards. Small campaigns stay unsharded (the scheduling
// overhead would exceed the work); the heavy campaigns the ROADMAP
// targets fan out.
func AutoShards(gates, faults int) int {
	if gates <= 0 || faults <= 0 {
		return 1
	}
	work := int64(gates) * int64(faults)
	k := int((work + autoShardWork - 1) / autoShardWork)
	return ClampShards(k, faults)
}

// autoShardWork is the gates x faults budget one auto-sized shard
// targets: at ~1k gates x ~4k faults (the mult16 transistor campaign) a
// campaign splits into a handful of shards, while sub-100-gate circuits
// stay single-shot.
const autoShardWork = 1 << 20
