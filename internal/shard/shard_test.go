package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPartitionTiles(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 1}, {0, 4}, {1, 1}, {1, 4}, {7, 3}, {64, 8}, {65, 8}, {100, 7}, {5, 5}, {5, 0},
	} {
		rs := Partition(tc.n, tc.k)
		wantK := tc.k
		if wantK <= 0 {
			wantK = 1
		}
		if len(rs) != wantK {
			t.Fatalf("Partition(%d,%d) = %d ranges", tc.n, tc.k, len(rs))
		}
		at := 0
		for _, r := range rs {
			if r.Start != at || r.End < r.Start {
				t.Fatalf("Partition(%d,%d) = %v: not a tiling", tc.n, tc.k, rs)
			}
			at = r.End
		}
		if at != tc.n {
			t.Fatalf("Partition(%d,%d) covers %d", tc.n, tc.k, at)
		}
		// Balanced: sizes differ by at most one.
		min, max := tc.n+1, -1
		for _, r := range rs {
			if l := r.Len(); l < min {
				min = l
			}
			if l := r.Len(); l > max {
				max = l
			}
		}
		if max-min > 1 {
			t.Fatalf("Partition(%d,%d) = %v: unbalanced", tc.n, tc.k, rs)
		}
	}
}

func TestSubKeyStableAndDistinct(t *testing.T) {
	const ck = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	seen := map[string]string{}
	for _, total := range []int{1, 2, 4} {
		for i := 0; i < total; i++ {
			for _, cap := range []bool{false, true} {
				label := fmt.Sprintf("%d/%d cap=%t", i, total, cap)
				k := SubKey(ck, i, total, cap)
				if k != SubKey(ck, i, total, cap) {
					t.Fatalf("SubKey not deterministic for %s", label)
				}
				if prev, dup := seen[k]; dup {
					t.Fatalf("SubKey collision: %s and %s", prev, label)
				}
				seen[k] = label
				if len(k) != 64 {
					t.Fatalf("SubKey %s not 64 hex chars: %q", label, k)
				}
			}
		}
	}
	if SubKey(ck, 0, 2, false) == SubKey("b"+ck[1:], 0, 2, false) {
		t.Fatal("SubKey ignores the campaign key")
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	const ck = "cccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccccc"
	a := NewPlan(ck, 4, 10, 23, 7, true)
	b := NewPlan(ck, 4, 10, 23, 7, true)
	if len(a.Jobs) != 4 || len(b.Jobs) != 4 {
		t.Fatalf("plan sizes: %d, %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("plans differ at %d: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	// Clamp: finer than the largest class collapses.
	p := NewPlan(ck, 100, 3, 5, 2, false)
	if p.Total != 5 {
		t.Fatalf("Total = %d, want clamp to 5", p.Total)
	}
	if got := NewPlan(ck, 0, 3, 5, 2, false).Total; got != 1 {
		t.Fatalf("k=0 Total = %d, want 1", got)
	}
}

func TestAutoShards(t *testing.T) {
	if k := AutoShards(39, 200); k != 1 {
		t.Fatalf("small campaign auto shards = %d, want 1", k)
	}
	if k := AutoShards(1000, 4000); k < 2 {
		t.Fatalf("mult16-scale campaign auto shards = %d, want >= 2", k)
	}
	if k := AutoShards(1_000_000, 10_000_000); k != MaxShards {
		t.Fatalf("huge campaign auto shards = %d, want MaxShards", k)
	}
	if k := AutoShards(0, 0); k != 1 {
		t.Fatalf("empty campaign auto shards = %d, want 1", k)
	}
}

func testJobs(n int) []SubJob {
	p := NewPlan("dddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddddd", n, n*10, n*10, 0, false)
	return p.Jobs
}

func TestSchedulerRunsAll(t *testing.T) {
	jobs := testJobs(8)
	var ran atomic.Int64
	s := &Scheduler{Workers: 3}
	err := s.Run(context.Background(), jobs, func(ctx context.Context, j SubJob) error {
		ran.Add(1)
		return nil
	}, Events{})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d of 8", ran.Load())
	}
}

func TestSchedulerRetriesThenSucceeds(t *testing.T) {
	jobs := testJobs(4)
	var mu sync.Mutex
	tries := map[int]int{}
	var retried atomic.Int64
	s := &Scheduler{Workers: 2, Retries: 2}
	err := s.Run(context.Background(), jobs, func(ctx context.Context, j SubJob) error {
		mu.Lock()
		tries[j.Index]++
		n := tries[j.Index]
		mu.Unlock()
		if j.Index == 1 && n < 3 {
			return errors.New("transient")
		}
		return nil
	}, Events{Retried: func(SubJob, int, error) { retried.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if tries[1] != 3 {
		t.Fatalf("shard 1 attempted %d times, want 3", tries[1])
	}
	if retried.Load() != 2 {
		t.Fatalf("retried events = %d, want 2", retried.Load())
	}
}

func TestSchedulerQuarantinesButFinishesOthers(t *testing.T) {
	jobs := testJobs(6)
	var done atomic.Int64
	var quarantined atomic.Int64
	s := &Scheduler{Workers: 2, Retries: 1}
	err := s.Run(context.Background(), jobs, func(ctx context.Context, j SubJob) error {
		if j.Index == 2 {
			return errors.New("poisoned shard")
		}
		done.Add(1)
		return nil
	}, Events{Quarantined: func(SubJob, error) { quarantined.Add(1) }})
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want QuarantineError", err)
	}
	if len(qe.Failures) != 1 || qe.Failures[2] == nil {
		t.Fatalf("failures = %v", qe.Failures)
	}
	if done.Load() != 5 {
		t.Fatalf("healthy shards done = %d, want 5", done.Load())
	}
	if quarantined.Load() != 1 {
		t.Fatalf("quarantined events = %d, want 1", quarantined.Load())
	}
}

func TestSchedulerHonoursCancel(t *testing.T) {
	jobs := testJobs(16)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	s := &Scheduler{Workers: 1, Retries: 5}
	err := s.Run(ctx, jobs, func(ctx context.Context, j SubJob) error {
		if started.Add(1) == 2 {
			cancel()
		}
		return ctx.Err()
	}, Events{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n > 3 {
		t.Fatalf("started %d shards after cancel", n)
	}
}

func TestSchedulerAttemptTimeout(t *testing.T) {
	jobs := testJobs(1)
	var tries atomic.Int64
	s := &Scheduler{Workers: 1, Retries: 1, Timeout: 10 * time.Millisecond}
	err := s.Run(context.Background(), jobs, func(ctx context.Context, j SubJob) error {
		tries.Add(1)
		<-ctx.Done() // simulate a hung shard; the attempt deadline frees it
		return ctx.Err()
	}, Events{})
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want quarantine after timed-out retries", err)
	}
	if tries.Load() != 2 {
		t.Fatalf("attempts = %d, want 2 (timeout is retryable)", tries.Load())
	}
}

func TestSchedulerDraining(t *testing.T) {
	jobs := testJobs(8)
	drain := make(chan struct{})
	var started atomic.Int64
	var finished atomic.Int64
	s := &Scheduler{Workers: 1, Draining: drain}
	err := s.Run(context.Background(), jobs, func(ctx context.Context, j SubJob) error {
		if started.Add(1) == 2 {
			close(drain)
		}
		finished.Add(1)
		return nil
	}, Events{})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("err = %v, want ErrDraining", err)
	}
	// In-flight shards finished; unstarted shards never began.
	if f := finished.Load(); f != started.Load() {
		t.Fatalf("finished %d of %d started", f, started.Load())
	}
	if started.Load() >= 8 {
		t.Fatal("drain did not abandon any shard")
	}
}
