package shard

import (
	"testing"

	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
)

func sigFixture(t *testing.T, nFaults, nPatterns int, leak bool) *faultsim.SignatureCapture {
	t.Helper()
	c := faultsim.NewSignatureCapture(nFaults, nPatterns)
	for f := 0; f < nFaults; f++ {
		for p := 0; p < nPatterns; p++ {
			if (f+p)%3 == 0 {
				c.Out(f)[p/64] |= 1 << uint(p%64)
			}
			if leak && (f*p)%5 == 1 {
				c.Leak(f)[p/64] |= 1 << uint(p%64)
			}
		}
	}
	return c
}

// slice cuts a full capture down to one shard's rows, simulating what a
// shard that simulated only faults [r.Start, r.End) would have encoded.
func sliceRows(rows []string, r Range) []string {
	return rows[r.Start:r.End]
}

func TestMergeSignaturesRoundTrip(t *testing.T) {
	const nFaults, nPatterns = 23, 130 // spans >2 words per row
	for _, withLeak := range []bool{false, true} {
		full := sigFixture(t, nFaults, nPatterns, withLeak)
		outRows := EncodeSigRows(full, false)
		leakRows := EncodeSigRows(full, true)

		parts := make([]*ClassResult, 0, 4)
		for _, r := range Partition(nFaults, 4) {
			p := &ClassResult{
				Range: r,
				Dets:  make([]Det, r.Len()),
				Out:   sliceRows(outRows, r),
			}
			if withLeak {
				p.Leak = sliceRows(leakRows, r)
			}
			parts = append(parts, p)
		}
		// Shuffle order: merge must sort by range.
		parts[0], parts[2] = parts[2], parts[0]

		merged, err := MergeSignatures(nFaults, nPatterns, parts, withLeak)
		if err != nil {
			t.Fatalf("withLeak=%t: %v", withLeak, err)
		}
		for f := 0; f < nFaults; f++ {
			for w, v := range full.Out(f) {
				if merged.Out(f)[w] != v {
					t.Fatalf("withLeak=%t: out plane differs at fault %d word %d", withLeak, f, w)
				}
			}
			if withLeak {
				for w, v := range full.Leak(f) {
					if merged.Leak(f)[w] != v {
						t.Fatalf("leak plane differs at fault %d word %d", f, w)
					}
				}
			}
		}
	}
}

func TestMergeSignaturesRejectsGapsAndMissingRows(t *testing.T) {
	const nFaults, nPatterns = 10, 8
	full := sigFixture(t, nFaults, nPatterns, false)
	rows := EncodeSigRows(full, false)

	gap := []*ClassResult{
		{Range: Range{0, 4}, Dets: make([]Det, 4), Out: sliceRows(rows, Range{0, 4})},
		{Range: Range{5, 10}, Dets: make([]Det, 5), Out: sliceRows(rows, Range{5, 10})},
	}
	if _, err := MergeSignatures(nFaults, nPatterns, gap, false); err == nil {
		t.Fatal("merge accepted a coverage gap")
	}

	missing := []*ClassResult{
		{Range: Range{0, 10}, Dets: make([]Det, 10)},
	}
	if _, err := MergeSignatures(nFaults, nPatterns, missing, false); err == nil {
		t.Fatal("merge accepted parts without signature rows")
	}

	short := []*ClassResult{
		{Range: Range{0, 10}, Dets: make([]Det, 10), Out: append([]string{"AAAA"}, sliceRows(rows, Range{1, 10})...)},
	}
	if _, err := MergeSignatures(nFaults, nPatterns, short, false); err == nil {
		t.Fatal("merge accepted a malformed signature row")
	}
}

func TestMergeDetectionsRoundTrip(t *testing.T) {
	universe := make([]core.Fault, 9)
	for i := range universe {
		universe[i] = core.Fault{Net: string(rune('a' + i)), GateIdx: i, Pin: -1}
	}
	full := make([]faultsim.Detection, len(universe))
	for i := range full {
		full[i] = faultsim.Detection{Fault: universe[i], Method: faultsim.ByOutput, Pattern: i * 2}
	}
	full[4].Method = faultsim.ByNone // undetected fault keeps its zero record

	parts := make([]*ClassResult, 0, 3)
	for _, r := range Partition(len(universe), 3) {
		parts = append(parts, &ClassResult{
			Range: r,
			Dets:  EncodeDetections(full[r.Start:r.End]),
		})
	}
	merged, err := MergeDetections(universe, parts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if merged[i] != full[i] {
			t.Fatalf("detection %d: got %+v, want %+v", i, merged[i], full[i])
		}
	}

	// Overlap detection: duplicated range must fail.
	bad := append(parts[:0:0], parts...)
	bad = append(bad, parts[1])
	if _, err := MergeDetections(universe, bad); err == nil {
		t.Fatal("merge accepted overlapping ranges")
	}
}

func TestMatchesRejectsMismatches(t *testing.T) {
	plan := NewPlan("eeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeeee", 2, 8, 6, 0, false)
	j := plan.Jobs[1]
	ok := &Result{
		Key: j.Key, CampaignKey: plan.CampaignKey, Index: j.Index, Total: j.Total,
		StuckAt:     &ClassResult{Range: j.StuckAt, Dets: make([]Det, j.StuckAt.Len())},
		TransistorV: &ClassResult{Range: j.Transistor, Dets: make([]Det, j.Transistor.Len())},
	}
	if err := ok.Matches(j); err != nil {
		t.Fatal(err)
	}
	wrongKey := *ok
	wrongKey.Key = plan.Jobs[0].Key
	if err := wrongKey.Matches(j); err == nil {
		t.Fatal("accepted a result keyed for another shard")
	}
	wrongRange := *ok
	wrongRange.StuckAt = &ClassResult{Range: plan.Jobs[0].StuckAt, Dets: make([]Det, plan.Jobs[0].StuckAt.Len())}
	if err := wrongRange.Matches(j); err == nil {
		t.Fatal("accepted a result with another shard's range")
	}
}
