module cpsinw

go 1.22
